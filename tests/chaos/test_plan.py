"""FaultPlan: canonical bytes, seeded generation, byte-identical replay.

The battery's reproducibility contract (DESIGN.md §14): a chaos run is
fully described by (fleet seed, plan, load profile), the plan is a pure
function of *its* seed, and a failing storm re-files as "seed N, plan
bytes B" — so these properties are what make a chaos failure a seed
instead of an anecdote.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosOrchestrator,
    FaultEvent,
    FaultPlan,
    InProcessFleet,
)
from repro.chaos.plan import EVENT_KINDS
from repro.workloads.load_gen import LoadProfile


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "meteor", "edge-0")

    def test_rejects_negative_tick(self):
        with pytest.raises(ValueError, match="negative tick"):
            FaultEvent(-1, "partition", "edge-0")

    def test_rejects_unserializable_target(self):
        with pytest.raises(ValueError, match="unserializable"):
            FaultEvent(0, "partition", "edge 0")


class TestFaultPlan:
    def test_events_canonically_sorted(self):
        plan = FaultPlan(
            name="p", seed=0, ticks=5,
            events=(
                FaultEvent(3, "heal", "edge-0"),
                FaultEvent(1, "partition", "edge-0"),
            ),
        )
        assert [ev.tick for ev in plan.events] == [1, 3]

    def test_rejects_event_outside_ticks(self):
        with pytest.raises(ValueError, match="outside plan"):
            FaultPlan(
                name="p", seed=0, ticks=3,
                events=(FaultEvent(3, "heal", "edge-0"),),
            )

    def test_at_and_targets(self):
        plan = FaultPlan(
            name="p", seed=0, ticks=5,
            events=(
                FaultEvent(1, "partition", "edge-1"),
                FaultEvent(1, "drop", "edge-0", 2.0),
                FaultEvent(2, "heal", "edge-1"),
            ),
        )
        assert [ev.kind for ev in plan.at(1)] == ["drop", "partition"]
        assert plan.targets() == ("edge-0", "edge-1")

    def test_roundtrip_hand_authored(self):
        plan = FaultPlan(
            name="hand", seed=9, ticks=8,
            events=(
                FaultEvent(0, "slow", "edge-2", 0.0125),
                FaultEvent(3, "tamper", "edge-1", 7.0),
                FaultEvent(5, "rotate", "central"),
            ),
        )
        assert FaultPlan.from_bytes(plan.to_bytes()) == plan

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError, match="faultplan"):
            FaultPlan.from_bytes(b"not a plan\n")

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_generated_plan_roundtrips_and_is_pure(self, seed):
        """Generation is a pure function of its inputs, and the
        canonical bytes round-trip exactly (repr floats included)."""
        targets = ["edge-0", "edge-1", "edge-2"]
        plan = FaultPlan.generate(seed, targets, ticks=10,
                                  events_per_tick=1.3)
        again = FaultPlan.generate(seed, targets, ticks=10,
                                   events_per_tick=1.3)
        assert plan == again
        assert plan.to_bytes() == again.to_bytes()
        decoded = FaultPlan.from_bytes(plan.to_bytes())
        assert decoded == plan
        assert decoded.to_bytes() == plan.to_bytes()
        for ev in plan.events:
            assert ev.kind in EVENT_KINDS
            assert 0 <= ev.tick < plan.ticks

    def test_equal_plans_iff_equal_bytes(self):
        a = FaultPlan.generate(5, ["edge-0", "edge-1"], ticks=6)
        b = FaultPlan.generate(5, ["edge-0", "edge-1"], ticks=6)
        c = FaultPlan.generate(6, ["edge-0", "edge-1"], ticks=6)
        assert a == b and a.to_bytes() == b.to_bytes()
        assert a != c and a.to_bytes() != c.to_bytes()


class TestReplay:
    """Any interleaving of partition/heal/kill (and the rest) against a
    FaultPlan schedule is replayable byte-identically from its seed."""

    @staticmethod
    def _run(seed):
        plan = FaultPlan.generate(
            seed,
            ["edge-0", "edge-1", "edge-2"],
            ticks=5,
            events_per_tick=1.5,
            name="replay",
        )
        fleet = InProcessFleet(n_edges=3, rows=32, seed=31 + seed)
        orch = ChaosOrchestrator(
            fleet,
            plan,
            LoadProfile(n_keys=32, queries_per_tick=4, seed=seed),
        )
        return orch.run()

    @given(seed=st.integers(0, 500))
    @settings(max_examples=5, deadline=None)
    def test_same_seed_same_storm(self, seed):
        a = self._run(seed)
        b = self._run(seed)
        # The applied-fault trace and the plan bytes are the replay
        # evidence: byte-identical across runs.
        assert a.trace == b.trace
        assert a.plan_bytes == b.plan_bytes
        # Every deterministic observation matches too (wall-clock
        # latency lives only in load_summary and is not compared).
        for attr in ("verified", "unverified", "unavailable",
                     "rejections", "detection_queries", "quarantined"):
            assert getattr(a, attr) == getattr(b, attr), attr
        assert a.ok and b.ok
