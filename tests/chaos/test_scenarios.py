"""The standing battery, asserted (DESIGN.md §14).

Every named scenario must complete with **zero unverified results**,
quarantine any tamper it schedules, and converge to post-storm cursor
parity (the orchestrator raises if settle fails, so a returned report
is itself the parity proof).  Telemetry's ``*.unexpected`` counters
must stay silent throughout — a storm exercises the *expected* error
paths; anything routed to an unexpected-counter is a swallowed bug.
"""

import pytest

from repro.chaos.scenarios import SCENARIOS
from repro.edge import telemetry


@pytest.fixture(scope="module")
def battery():
    """Run every scenario once (cached for all assertions below),
    with the unexpected-error telemetry watched across the whole
    battery."""
    telemetry.reset()
    reports = {name: fn(seed=0) for name, fn in SCENARIOS.items()}
    unexpected = telemetry.unexpected_total()
    return reports, unexpected


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_zero_unverified_results(battery, name):
    """The paper's invariant under storm: the caller never sees an
    unverified result, whatever the weather."""
    reports, _ = battery
    report = reports[name]
    assert report.unverified == 0, (
        f"{name}: {report.unverified} unverified results "
        f"(plan: {report.plan_bytes!r})"
    )
    assert report.ok


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_storm_served_queries(battery, name):
    """A battery that answered nothing proves nothing: every scenario
    must actually serve verified results under its storm."""
    reports, _ = battery
    assert reports[name].verified > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_replayable_from_plan_bytes(battery, name):
    """Each report carries its replay evidence: canonical plan bytes
    and the applied-fault trace."""
    from repro.chaos.plan import FaultPlan

    reports, _ = battery
    report = reports[name]
    plan = FaultPlan.from_bytes(report.plan_bytes)
    assert plan.to_bytes() == report.plan_bytes


def test_tamper_always_quarantined(battery):
    """Byzantine scenarios detect and quarantine every tampered edge;
    detection latency is finite and counted."""
    reports, _ = battery
    for name in ("byzantine_edges", "combined_storm"):
        report = reports[name]
        assert report.rejections > 0, f"{name}: tamper never rejected"
        assert report.detection_queries > 0, (
            f"{name}: tampered but never detected"
        )
        assert report.quarantined, f"{name}: nothing quarantined"


def test_clean_scenarios_reject_nothing(battery):
    """Fault storms without tamper must not trip the verifier — a
    partition or a slow link is not a forgery."""
    reports, _ = battery
    for name in ("network_flaps", "slow_links", "rotation_mid_partition"):
        report = reports[name]
        assert report.rejections == 0
        assert report.detection_queries == 0  # no tamper scheduled
        assert not report.quarantined


def test_relay_storm_exercises_store_bounds(battery):
    """The relay storm must actually trip the byte-cap eviction path
    *and* the snapshot-covers-chain compaction path — otherwise the
    bounded store rides along untested."""
    reports, _ = battery
    summary = reports["relay_storm"].load_summary
    assert summary["store_evictions"] > 0
    assert summary["compacted_frames"] > 0


def test_recovery_counted(battery):
    """Post-storm convergence took at least one settle pump and was
    reached (settle raises otherwise — the report existing is the
    parity proof)."""
    reports, _ = battery
    for name, report in reports.items():
        assert report.recovery_pumps >= 1, name


def test_no_unexpected_swallows_across_battery(battery):
    """Storms exercise expected error paths (handshake drops, stale
    epochs); the ``*.unexpected`` telemetry must stay at zero — any
    hit is a silently-swallowed bug surfacing."""
    _, unexpected = battery
    assert unexpected == 0, telemetry.counters()
