"""Restart storms over real processes (``-m socket``).

The OS-process face of the chaos battery: seeded SIGKILL/relaunch
storms over edge fleets and relay subtrees, with the PR-5 fd-hygiene
regression extended to repeated restart cycles — a storm that leaks a
descriptor per kill survives the single-restart test and falls over in
production.
"""

import os

import pytest

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment, RelayDeployment
from repro.workloads.generator import TableSpec, generate_table

pytestmark = [pytest.mark.socket, pytest.mark.timeout(240)]

DB = "chaosdeploydb"
TABLE = "items"


def make_central(rows=80, **kwargs):
    central = CentralServer(DB, rsa_bits=512, seed=61, **kwargs)
    schema, data = generate_table(
        TableSpec(name=TABLE, rows=rows, columns=3, seed=3)
    )
    central.create_table(schema, data, fanout_override=6)
    return central


def fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def expected_order(seed, targets, cycles):
    """The schedule ``restart_storm`` promises: a pure function of the
    seed (recomputed here independently)."""
    import random

    rng = random.Random(seed)
    order = []
    for _ in range(cycles):
        shuffled = list(targets)
        rng.shuffle(shuffled)
        order.extend(shuffled)
    return order


class TestEdgeRestartStorm:
    def test_storm_is_seeded_heals_and_leaks_no_fds(self, tmp_path):
        """Three kill/relaunch cycles over two edges: the kill order
        replays from the seed, every post-cycle query is verified,
        the fleet ends at parity, and the process-wide fd count
        returns to its baseline (PR-5 hygiene, now under repetition)."""
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc (Linux)")
        central = make_central()
        deploy = Deployment(central, log_dir=str(tmp_path / "logs"))
        try:
            client = central.make_client()
            for name in ("edge-0", "edge-1"):
                deploy.launch_edge(name)
                deploy.wait_for_edge(name)
            baseline = fd_count()

            order = deploy.restart_storm(cycles=3, seed=7)
            assert order == expected_order(7, ["edge-0", "edge-1"], 3)

            central.insert(TABLE, (9001, "a", "b"))
            deploy.sync()
            for name in ("edge-0", "edge-1"):
                assert central.staleness(name, TABLE) == 0
                resp = deploy.range_query(name, TABLE, low=9001, high=9001)
                assert len(resp.result.rows) == 1
                assert client.verify(resp).ok

            assert fd_count() <= baseline + 1, (
                f"fd leak under storm: baseline {baseline}, "
                f"now {fd_count()}"
            )
        finally:
            deploy.shutdown()


class TestRelayRestartStorm:
    def test_relay_subtree_storm_zero_unverified_no_fd_leak(self, tmp_path):
        """Two storms over a relay subtree (store cap pinned across
        restarts): between storms the subtree heals to parity, every
        result routed to the caller verifies, and repeated relay
        kills leak no descriptors in the supervising process."""
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc (Linux)")
        central = make_central()
        rd = RelayDeployment(central, log_dir=str(tmp_path / "logs"))
        try:
            client = central.make_client()
            rd.launch_relay("relay-0", max_store_bytes=200_000)
            rd.wait_for_relay("relay-0")
            rd.launch_edge("edge-0", "relay-0")
            rd.launch_edge("edge-1", "relay-0")
            rd.wait_for_edges("relay-0", ["edge-0", "edge-1"], TABLE)
            assert rd.relay_opts["relay-0"]["max_store_bytes"] == 200_000
            baseline = fd_count()

            unverified = 0
            for round_, seed in enumerate((3, 4)):
                order = rd.restart_storm(cycles=1, seed=seed)
                assert order == ["relay-0"]
                rd.wait_for_relay("relay-0")
                rd.wait_for_edges(
                    "relay-0", ["edge-0", "edge-1"], TABLE, timeout=60.0
                )
                central.insert(TABLE, (9100 + round_, "x", "y"))
                rd.sync()
                assert central.staleness("relay-0", TABLE) == 0
                resp = rd.range_query(
                    "relay-0", TABLE, low=9100, high=9100 + round_
                )
                assert len(resp.result.rows) == round_ + 1
                if not client.verify(resp).ok:
                    unverified += 1
            assert unverified == 0
            # The restart rebuilt the relay with its pinned options.
            assert rd.relay_opts["relay-0"]["max_store_bytes"] == 200_000

            assert fd_count() <= baseline + 1, (
                f"fd leak under relay storm: baseline {baseline}, "
                f"now {fd_count()}"
            )
        finally:
            rd.shutdown()
