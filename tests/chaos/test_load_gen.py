"""Open-loop load generation: determinism, Zipf shape, SLO accounting."""

from repro.workloads.load_gen import (
    LoadGenerator,
    LoadProfile,
    LoadReport,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_sample(self):
        assert percentile([0.25], 50.0) == 0.25

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 50.0) == 0.5
        assert percentile([0.0, 1.0, 2.0, 3.0], 25.0) == 0.75

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 5.0


class TestLoadGenerator:
    def test_batches_deterministic(self):
        profile = LoadProfile(seed=7, n_keys=32)
        a = LoadGenerator(profile, ticks=6)
        b = LoadGenerator(profile, ticks=6)
        assert all(a.batch(t) == b.batch(t) for t in range(6))

    def test_open_loop_batches_precomputed(self):
        """Observation hooks must not influence the query stream — the
        whole schedule exists before the first query is issued."""
        profile = LoadProfile(seed=3, n_keys=32)
        gen = LoadGenerator(profile, ticks=4)
        expected = [gen.batch(t) for t in range(4)]
        gen.note_issued()
        gen.note_unavailable()
        gen.note_answered(12.5)
        assert [gen.batch(t) for t in range(4)] == expected

    def test_zipf_head_is_hottest(self):
        """theta=0.99 skew: the rank-0 key (key_start) centers more
        queries than any tail key — the load shape chaos relies on to
        guarantee tamper-at-the-head gets queried."""
        profile = LoadProfile(seed=1, n_keys=64, queries_per_tick=32)
        gen = LoadGenerator(profile, ticks=16)
        centers = [
            (low + high) // 2
            for t in range(16)
            for (low, high) in gen.batch(t)
        ]
        head = centers.count(profile.key_start)
        tail = max(centers.count(k) for k in range(32, 64))
        assert head > tail

    def test_span_and_lattice(self):
        profile = LoadProfile(
            seed=2, n_keys=8, key_start=100, key_step=10, span=2
        )
        gen = LoadGenerator(profile, ticks=2)
        for low, high in gen.batch(0):
            assert high - low == 2 * profile.span * profile.key_step
            center = (low + high) // 2
            assert (center - profile.key_start) % profile.key_step == 0


class TestLoadReport:
    def test_counts_and_percentiles(self):
        report = LoadReport(slo_seconds=0.1)
        report.issued = 4
        report.answered = 3
        report.unavailable = 1
        report.latencies = [0.05, 0.08, 0.2]
        assert report.over_slo == 1
        assert report.p50 == 0.08
        summary = report.summary()
        assert summary["issued"] == 4
        assert summary["unavailable"] == 1
        assert summary["over_slo"] == 1
        assert summary["p50_ms"] == 80.0

    def test_empty_report(self):
        report = LoadReport()
        assert report.p50 == 0.0 and report.p99 == 0.0
        assert report.over_slo == 0
