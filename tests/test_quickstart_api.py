"""Tests for the package-level quickstart API and BLOB projection —
the paper's motivating access-control/efficiency case ("wasteful data
transfers especially if the filtered attributes are BLOBs")."""

import pytest

from repro import quick_setup
from repro.core.wire import wire_breakdown
from repro.db.schema import Column, TableSchema
from repro.db.types import BlobType, IntType, VarcharType
from repro.edge.central import CentralServer


class TestQuickSetup:
    def test_returns_working_trio(self):
        central, edge, client = quick_setup(rows=100, rsa_bits=512, seed=3)
        resp = edge.range_query("items", low=0, high=10)
        assert len(resp.result.rows) == 11
        assert client.verify(resp).ok

    def test_configurable_shape(self):
        central, edge, _client = quick_setup(
            rows=50, columns=4, rsa_bits=512, seed=4, table_name="demo"
        )
        assert "demo" in central.tables
        assert central.tables["demo"].schema.num_columns == 4
        assert len(central.tables["demo"]) == 50

    def test_deterministic_across_calls(self):
        c1, e1, _ = quick_setup(rows=20, rsa_bits=512, seed=5)
        c2, e2, _ = quick_setup(rows=20, rsa_bits=512, seed=5)
        r1 = e1.range_query("items", 0, 19).result.rows
        r2 = e2.range_query("items", 0, 19).result.rows
        assert r1 == r2


class TestBlobProjection:
    """Filtered BLOBs never leave the edge: only their signed digests
    ship, so (a) bandwidth is saved and (b) clients that project a BLOB
    away can still verify — the access-control point of Section 2."""

    @pytest.fixture
    def blob_deployment(self):
        central = CentralServer(db_name="blobdb", rsa_bits=512, seed=9)
        schema = TableSchema(
            "media",
            (
                Column("id", IntType()),
                Column("title", VarcharType(capacity=20)),
                Column("payload", BlobType(capacity=4096)),
            ),
            key="id",
        )
        rows = [
            (i, f"clip-{i}", bytes([i % 256]) * 2000) for i in range(50)
        ]
        central.create_table(schema, rows, fanout_override=8)
        edge = central.spawn_edge_server("blob-edge")
        return central, edge, central.make_client()

    def test_projected_blob_not_shipped(self, blob_deployment):
        central, edge, client = blob_deployment
        full = edge.range_query("media", low=0, high=20)
        slim = edge.range_query("media", low=0, high=20, columns=("id", "title"))
        assert client.verify(slim).ok
        # 21 blobs x 2000 bytes stay at the edge.
        assert full.wire_bytes - slim.wire_bytes > 21 * 1500
        assert all(
            not isinstance(v, (bytes, bytearray))
            for row in slim.result.rows
            for v in row
        )

    def test_blob_values_verify_when_shipped(self, blob_deployment):
        _central, edge, client = blob_deployment
        full = edge.range_query("media", low=5, high=8)
        assert client.verify(full).ok

    def test_tampered_blob_detected(self, blob_deployment):
        _central, edge, client = blob_deployment
        resp = edge.range_query("media", low=5, high=8)
        row = list(resp.result.rows[0])
        row[2] = b"X" + row[2][1:]
        resp.result.rows[0] = tuple(row)
        assert not client.verify(resp).ok

    def test_blob_digests_in_dp(self, blob_deployment):
        central, edge, _client = blob_deployment
        slim = edge.range_query("media", low=0, high=9, columns=("id",))
        breakdown = wire_breakdown(
            slim.result, central.public_key.signature_len
        )
        assert breakdown["dp"] > 0
        # D_P: 10 rows x 2 filtered columns.
        assert slim.result.vo.num_projection_digests == 20
