"""Property-based and unit tests for the commutative digest combinators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commutative import (
    AdditiveSetHash,
    ExponentialCommutativeHash,
    MultiplicativeSetHash,
    get_commutative_hash,
    pow_by_repeated_squaring,
)
from repro.crypto.meter import CostMeter
from repro.exceptions import CryptoError

ALL_SCHEMES = ["exp2k", "mult-prime", "add2k"]

digest_values = st.integers(min_value=1, max_value=2**128 - 1)


@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    return get_commutative_hash(request.param)


class TestRepeatedSquaring:
    @given(
        st.integers(min_value=0, max_value=2**64),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=1, max_value=2**64),
    )
    @settings(max_examples=200)
    def test_matches_builtin_pow(self, base, exp, mod):
        assert pow_by_repeated_squaring(base, exp, mod) == pow(base, exp, mod)

    def test_paper_example_g16(self):
        # The paper's example: g^16 computed with 4 squarings.
        n = 1 << 128
        assert pow_by_repeated_squaring(3, 16, n) == pow(3, 16, n)

    def test_rejects_bad_modulus(self):
        with pytest.raises(CryptoError):
            pow_by_repeated_squaring(2, 3, 0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(CryptoError):
            pow_by_repeated_squaring(2, -1, 7)


class TestAlgebra:
    """The invariants every combinator must satisfy."""

    @given(st.lists(digest_values, min_size=1, max_size=8), st.randoms())
    @settings(max_examples=60)
    def test_commutativity(self, values, rnd):
        for scheme in (
            ExponentialCommutativeHash(),
            MultiplicativeSetHash(),
            AdditiveSetHash(),
        ):
            shuffled = list(values)
            rnd.shuffle(shuffled)
            assert scheme.combine(values) == scheme.combine(shuffled)

    @given(st.lists(digest_values, min_size=0, max_size=6), digest_values)
    @settings(max_examples=60)
    def test_fold_extends_combine(self, values, extra):
        for scheme in (
            ExponentialCommutativeHash(),
            MultiplicativeSetHash(),
            AdditiveSetHash(),
        ):
            assert scheme.fold(scheme.combine(values), extra) == scheme.combine(
                [*values, extra]
            )

    def test_empty_set_is_fold_identity(self, scheme):
        assert scheme.combine([]) == scheme.empty()
        v = scheme.digest_of_bytes(b"x")
        assert scheme.fold(scheme.empty(), v) == scheme.combine([v])

    def test_digest_of_bytes_deterministic(self, scheme):
        assert scheme.digest_of_bytes(b"hello") == scheme.digest_of_bytes(b"hello")

    def test_digest_of_bytes_discriminates(self, scheme):
        assert scheme.digest_of_bytes(b"hello") != scheme.digest_of_bytes(b"hellp")

    def test_digest_in_range(self, scheme):
        d = scheme.digest_of_bytes(b"abc")
        assert 0 < d < getattr(scheme, "modulus")

    def test_rejects_nonpositive_values(self, scheme):
        with pytest.raises(CryptoError):
            scheme.fold(scheme.empty(), 0)
        with pytest.raises(CryptoError):
            scheme.combine([-5])


class TestExponentialScheme:
    def test_matches_paper_formula(self):
        """combine({x1,x2}) must literally equal g^(x1*x2) mod 2^k (odd-forced)."""
        h = ExponentialCommutativeHash(bits=64, generator=3)
        x1, x2 = 7, 11
        assert h.combine([x1, x2]) == pow(3, x1 * x2, 1 << 64)

    def test_even_values_forced_odd(self):
        h = ExponentialCommutativeHash(bits=64)
        assert h.combine([6]) == h.combine([7])  # 6|1 == 7

    def test_digests_always_odd(self):
        h = ExponentialCommutativeHash()
        for i in range(50):
            assert h.digest_of_bytes(str(i).encode()) % 2 == 1

    def test_incremental_insert_property(self):
        """The property the paper exploits for cheap inserts."""
        h = ExponentialCommutativeHash()
        tuples = [h.digest_of_bytes(f"t{i}".encode()) for i in range(10)]
        node_digest = h.combine(tuples)
        new_tuple = h.digest_of_bytes(b"t-new")
        assert h.fold(node_digest, new_tuple) == h.combine([*tuples, new_tuple])

    def test_reference_pow_path_agrees(self):
        fast = ExponentialCommutativeHash(use_builtin_pow=True)
        slow = ExponentialCommutativeHash(use_builtin_pow=False)
        vals = [fast.digest_of_bytes(str(i).encode()) for i in range(5)]
        assert fast.combine(vals) == slow.combine(vals)

    def test_digest_len_matches_bits(self):
        assert ExponentialCommutativeHash(bits=128).digest_len == 16
        assert ExponentialCommutativeHash(bits=256).digest_len == 32

    def test_rejects_even_generator(self):
        with pytest.raises(CryptoError):
            ExponentialCommutativeHash(generator=4)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(CryptoError):
            ExponentialCommutativeHash(bits=4)

    def test_collision_smoke(self):
        """No collisions among a few thousand distinct inputs."""
        h = ExponentialCommutativeHash()
        seen = {h.digest_of_bytes(str(i).encode()) for i in range(4096)}
        assert len(seen) == 4096


class TestMetering:
    def test_hash_and_combine_counted(self):
        meter = CostMeter()
        h = ExponentialCommutativeHash(meter=meter)
        a = h.digest_of_bytes(b"aaa")
        b = h.digest_of_bytes(b"bbbb")
        h.combine([a, b])
        assert meter.hashes == 2
        assert meter.combines == 2
        assert meter.bytes_hashed == 7

    def test_fold_counts_one_combine(self):
        meter = CostMeter()
        h = AdditiveSetHash(meter=meter)
        h.fold(h.empty(), 5)
        assert meter.combines == 1


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_lookup(self, name):
        assert get_commutative_hash(name).name == name

    def test_unknown_name(self):
        with pytest.raises(CryptoError):
            get_commutative_hash("rot13")
