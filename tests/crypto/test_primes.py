"""Tests for Miller-Rabin primality and prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SMALL_PRIMES,
    generate_prime,
    is_probable_prime,
    miller_rabin,
    next_probable_prime,
)
from repro.exceptions import KeyGenerationError

KNOWN_PRIMES = [
    2, 3, 5, 7, 11, 101, 997, 7919, 104729,
    2_147_483_647,            # Mersenne prime 2^31 - 1
    (1 << 61) - 1,            # Mersenne prime 2^61 - 1
    32_416_190_071,
]

KNOWN_COMPOSITES = [
    1, 4, 9, 15, 100, 561, 1105, 1729,        # Carmichael numbers included
    2465, 2821, 6601, 8911, 41041, 62745,
    252_601, 294_409, 56_052_361,
    (1 << 61) - 3,
    7919 * 104729,
]


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes_accepted(self, p):
        assert miller_rabin(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites_rejected(self, c):
        assert not miller_rabin(c)

    def test_zero_and_negatives(self):
        assert not miller_rabin(0)
        assert not miller_rabin(-7)

    def test_agrees_with_trial_division_below_10000(self):
        def slow_prime(n):
            return n >= 2 and all(n % d for d in range(2, int(n**0.5) + 1))

        for n in range(10_000):
            assert miller_rabin(n) == slow_prime(n), n

    def test_large_prime_beyond_deterministic_bound(self):
        # 2^89 - 1 is a Mersenne prime above the deterministic witness bound.
        p = (1 << 89) - 1
        assert miller_rabin(p, rng=random.Random(0))
        assert not miller_rabin(p + 2, rng=random.Random(0))

    def test_is_probable_prime_alias(self):
        assert is_probable_prime(104729)
        assert not is_probable_prime(104730)


class TestNextProbablePrime:
    def test_small_values(self):
        assert next_probable_prime(0) == 2
        assert next_probable_prime(2) == 3
        assert next_probable_prime(3) == 5
        assert next_probable_prime(13) == 17

    def test_skips_composites(self):
        assert next_probable_prime(24) == 29

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_result_is_prime_and_greater(self, n):
        p = next_probable_prime(n)
        assert p > n
        assert miller_rabin(p)


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(42)
        for bits in (16, 64, 128, 256):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert miller_rabin(p)

    def test_top_two_bits_set(self):
        p = generate_prime(64, rng=random.Random(1))
        assert (p >> 62) & 0b11 == 0b11

    def test_deterministic_with_seeded_rng(self):
        p1 = generate_prime(96, rng=random.Random(5))
        p2 = generate_prime(96, rng=random.Random(5))
        assert p1 == p2

    def test_rejects_tiny_sizes(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(4)

    def test_small_primes_table_is_correct(self):
        assert SMALL_PRIMES[0] == 2
        assert SMALL_PRIMES[-1] == 997
        assert all(miller_rabin(p) for p in SMALL_PRIMES)
