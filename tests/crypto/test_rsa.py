"""Tests for the textbook RSA primitive."""

import pytest

from repro.crypto.rsa import (
    PUBLIC_EXPONENT,
    RSAKeyPair,
    generate_keypair,
)
from repro.exceptions import KeyGenerationError, SignatureError


@pytest.fixture(scope="module")
def keypair() -> RSAKeyPair:
    return generate_keypair(bits=512, seed=1234)


class TestKeyGeneration:
    def test_modulus_bit_length(self, keypair):
        assert keypair.bits == 512
        assert keypair.public.n == keypair.private.n

    def test_default_public_exponent(self, keypair):
        assert keypair.public.e == PUBLIC_EXPONENT

    def test_deterministic_from_seed(self):
        k1 = generate_keypair(bits=256, seed=99)
        k2 = generate_keypair(bits=256, seed=99)
        assert k1.private.n == k2.private.n
        assert k1.private.d == k2.private.d

    def test_different_seeds_differ(self):
        k1 = generate_keypair(bits=256, seed=1)
        k2 = generate_keypair(bits=256, seed=2)
        assert k1.private.n != k2.private.n

    def test_rejects_odd_bit_sizes(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(bits=513)

    def test_rejects_tiny_keys(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(bits=64)

    def test_primes_multiply_to_modulus(self, keypair):
        priv = keypair.private
        assert priv.p * priv.q == priv.n
        assert priv.p != priv.q

    def test_d_is_inverse_of_e(self, keypair):
        priv = keypair.private
        phi = (priv.p - 1) * (priv.q - 1)
        assert (priv.e * priv.d) % phi == 1


class TestRawOperations:
    def test_sign_verify_roundtrip(self, keypair):
        for value in (0, 1, 2, 12345, 2**100, keypair.private.n - 1):
            signed = keypair.private.apply(value)
            assert keypair.public.apply(signed) == value

    def test_signing_is_deterministic(self, keypair):
        assert keypair.private.apply(777) == keypair.private.apply(777)

    def test_crt_matches_plain_exponentiation(self, keypair):
        priv = keypair.private
        value = 987654321
        assert priv.apply(value) == pow(value, priv.d, priv.n)

    def test_wrong_key_does_not_verify(self, keypair):
        other = generate_keypair(bits=512, seed=4321)
        signed = keypair.private.apply(42)
        assert other.public.apply(signed) != 42

    def test_value_out_of_range_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.private.apply(keypair.private.n)
        with pytest.raises(SignatureError):
            keypair.public.apply(-1)

    def test_signature_len(self, keypair):
        assert keypair.public.signature_len == 64  # 512 bits

    def test_public_key_fingerprint_stable(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
