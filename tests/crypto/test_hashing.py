"""Tests for the base one-way hash wrappers."""

import hashlib

import pytest

from repro.crypto.hashing import (
    Md5Hash,
    Sha1Hash,
    Sha256Hash,
    get_base_hash,
)
from repro.exceptions import CryptoError


class TestHashWrappers:
    @pytest.mark.parametrize(
        "cls,name,length",
        [(Sha256Hash, "sha256", 32), (Sha1Hash, "sha1", 20), (Md5Hash, "md5", 16)],
    )
    def test_metadata(self, cls, name, length):
        h = cls()
        assert h.name == name
        assert h.digest_len == length

    def test_sha256_matches_hashlib(self):
        data = b"the quick brown fox"
        assert Sha256Hash().digest_bytes(data) == hashlib.sha256(data).digest()

    def test_md5_matches_hashlib(self):
        data = b"legacy"
        assert Md5Hash().digest_bytes(data) == hashlib.md5(data).digest()

    def test_digest_int_consistent_with_bytes(self):
        h = Sha256Hash()
        data = b"abc"
        assert h.digest_int(data) == int.from_bytes(h.digest_bytes(data), "big")

    def test_empty_input(self):
        assert Sha256Hash().digest_bytes(b"") == hashlib.sha256(b"").digest()

    def test_deterministic(self):
        h = Sha1Hash()
        assert h.digest_bytes(b"x") == h.digest_bytes(b"x")


class TestRegistry:
    @pytest.mark.parametrize("name", ["sha256", "SHA1", "Md5"])
    def test_case_insensitive_lookup(self, name):
        assert get_base_hash(name).name == name.lower()

    def test_unknown_rejected(self):
        with pytest.raises(CryptoError):
            get_base_hash("blake9")

    def test_fresh_instances(self):
        assert get_base_hash("sha256") is not get_base_hash("sha256")
