"""Tests for the canonical injective value encoding."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import (
    decode_uint,
    decode_value,
    decode_values,
    digest_input,
    encode_uint,
    encode_value,
    encode_values,
)
from repro.exceptions import EncodingError

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)


class TestScalarRoundtrip:
    @given(scalars)
    @settings(max_examples=300)
    def test_roundtrip(self, value):
        encoded = encode_value(value)
        decoded, offset = decode_value(encoded)
        assert offset == len(encoded)
        if isinstance(value, float):
            assert math.isclose(decoded, value) or decoded == value
        else:
            assert decoded == value
            assert type(decoded) is type(value) or isinstance(value, memoryview)

    def test_bool_not_confused_with_int(self):
        assert encode_value(True) != encode_value(1)
        assert encode_value(False) != encode_value(0)

    def test_str_not_confused_with_bytes(self):
        assert encode_value("ab") != encode_value(b"ab")

    def test_negative_ints(self):
        for v in (-1, -255, -256, -(2**64)):
            decoded, _ = decode_value(encode_value(v))
            assert decoded == v

    def test_unsupported_type_raises(self):
        with pytest.raises(EncodingError):
            encode_value([1, 2])

    def test_truncated_payload_raises(self):
        encoded = encode_value("hello")
        with pytest.raises(EncodingError):
            decode_value(encoded[:-2])

    def test_unknown_tag_raises(self):
        with pytest.raises(EncodingError):
            decode_value(b"Z" + encode_uint(0))


class TestInjectivity:
    @given(scalars, scalars)
    @settings(max_examples=300)
    def test_distinct_values_distinct_encodings(self, a, b):
        if a != b or type(a) is not type(b):
            if encode_value(a) == encode_value(b):
                # identical encodings are only acceptable for equal values
                assert a == b and type(a) is type(b)

    def test_concatenation_ambiguity_removed(self):
        # "ab"+"c" vs "a"+"bc" must differ once length-prefixed.
        assert encode_value("ab") + encode_value("c") != encode_value(
            "a"
        ) + encode_value("bc")


class TestSequences:
    @given(st.lists(scalars, max_size=10))
    @settings(max_examples=100)
    def test_values_roundtrip(self, values):
        # NaN-free floats only (strategy excludes NaN).
        encoded = encode_values(values)
        decoded, offset = decode_values(encoded)
        assert offset == len(encoded)
        assert len(decoded) == len(values)

    def test_empty_sequence(self):
        decoded, _ = decode_values(encode_values([]))
        assert decoded == []


class TestUint:
    def test_roundtrip(self):
        for v in (0, 1, 2**16, 2**32 - 1):
            assert decode_uint(encode_uint(v))[0] == v

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_uint(-1)
        with pytest.raises(EncodingError):
            encode_uint(2**32)

    def test_truncated(self):
        with pytest.raises(EncodingError):
            decode_uint(b"\x00\x00")


class TestDigestInput:
    def test_all_components_matter(self):
        base = digest_input("db", "t", "a", 1, "v")
        assert digest_input("dbX", "t", "a", 1, "v") != base
        assert digest_input("db", "tX", "a", 1, "v") != base
        assert digest_input("db", "t", "aX", 1, "v") != base
        assert digest_input("db", "t", "a", 2, "v") != base
        assert digest_input("db", "t", "a", 1, "vX") != base

    def test_deterministic(self):
        assert digest_input("d", "t", "a", 5, b"blob") == digest_input(
            "d", "t", "a", 5, b"blob"
        )

    def test_component_shift_ambiguity(self):
        # Moving characters between adjacent fields must change the bytes.
        assert digest_input("db", "ta", "x", 0, "") != digest_input(
            "dbt", "a", "x", 0, ""
        )
