"""Tests for digest signing, verification, epochs and the key ring."""

import pytest

from repro.crypto.keyring import KeyRing
from repro.crypto.meter import CostMeter
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner, DigestVerifier, SignedDigest
from repro.exceptions import SignatureError, StaleKeyError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, seed=2024)


@pytest.fixture
def signer(keypair):
    return DigestSigner.from_keypair(keypair)


@pytest.fixture
def verifier(keypair):
    return DigestVerifier(keypair.public)


class TestSignVerify:
    def test_roundtrip(self, signer, verifier):
        signed = signer.sign(123456789)
        assert verifier.recover(signed) == 123456789
        assert verifier.verify_value(signed, 123456789)

    def test_wrong_value_rejected(self, signer, verifier):
        signed = signer.sign(42)
        assert not verifier.verify_value(signed, 43)

    def test_tampered_signature_rejected(self, signer, verifier):
        signed = signer.sign(42)
        forged = SignedDigest(signature=signed.signature ^ 1, epoch=signed.epoch)
        assert not verifier.verify_value(forged, 42)

    def test_epoch_mismatch_detected(self, signer, verifier):
        signed = signer.sign(42)
        relabeled = SignedDigest(signature=signed.signature, epoch=signed.epoch + 1)
        with pytest.raises(SignatureError):
            verifier.recover(relabeled)

    def test_negative_value_rejected(self, signer):
        with pytest.raises(SignatureError):
            signer.sign(-1)

    def test_oversized_value_rejected(self, signer):
        with pytest.raises(SignatureError):
            signer.sign(signer.max_value + 1)

    def test_max_value_signable(self, signer, verifier):
        signed = signer.sign(signer.max_value)
        assert verifier.recover(signed) == signer.max_value

    def test_deterministic_signature(self, signer):
        assert signer.sign(7).signature == signer.sign(7).signature

    def test_distinct_epochs_distinct_signatures(self, keypair):
        s0 = DigestSigner.from_keypair(keypair, epoch=0)
        s1 = DigestSigner.from_keypair(keypair, epoch=1)
        assert s0.sign(7).signature != s1.sign(7).signature

    def test_invalid_epoch_rejected(self, keypair):
        with pytest.raises(SignatureError):
            DigestSigner.from_keypair(keypair, epoch=1 << 16)


class TestWireFormat:
    def test_roundtrip(self, signer, verifier):
        signed = signer.sign(555)
        data = signed.to_bytes(verifier.signature_len)
        parsed = SignedDigest.from_bytes(data, verifier.signature_len)
        assert parsed == signed
        assert signed.wire_size(verifier.signature_len) == len(data)

    def test_bad_length_rejected(self, verifier):
        with pytest.raises(SignatureError):
            SignedDigest.from_bytes(b"\x00" * 10, verifier.signature_len)


class TestMetering:
    def test_counts(self, keypair):
        meter = CostMeter()
        signer = DigestSigner.from_keypair(keypair, meter=meter)
        verifier = DigestVerifier(keypair.public, meter=meter)
        signed = signer.sign(9)
        verifier.recover(signed)
        verifier.verify_value(signed, 9)
        assert meter.signs == 1
        assert meter.verifies == 2


class TestKeyRing:
    def test_register_and_lookup(self, keypair):
        ring = KeyRing()
        rec = ring.register(keypair.public)
        assert rec.epoch == 0
        assert ring.current_epoch == 0
        assert ring.public_key_for(0) is keypair.public

    def test_unknown_epoch(self, keypair):
        ring = KeyRing()
        ring.register(keypair.public)
        with pytest.raises(StaleKeyError):
            ring.public_key_for(5)

    def test_rotation_expires_old_epoch(self, keypair):
        k2 = generate_keypair(bits=512, seed=11)
        ring = KeyRing()
        ring.register(keypair.public)
        ring.register(k2.public)          # epoch 1; epoch 0 expires at t=0
        assert ring.is_valid(0)           # still within same tick
        ring.tick()
        assert not ring.is_valid(0)       # stale now
        assert ring.is_valid(1)

    def test_grace_window(self, keypair):
        k2 = generate_keypair(bits=512, seed=12)
        ring = KeyRing(grace=2)
        ring.register(keypair.public)
        ring.register(k2.public)
        ring.tick(2)
        assert ring.is_valid(0)           # within grace
        ring.tick(1)
        assert not ring.is_valid(0)       # beyond grace

    def test_no_epoch_registered(self):
        ring = KeyRing()
        with pytest.raises(StaleKeyError):
            _ = ring.current_epoch

    def test_time_cannot_reverse(self, keypair):
        ring = KeyRing()
        with pytest.raises(ValueError):
            ring.tick(-1)


class TestCostMeter:
    def test_snapshot_and_reset(self):
        meter = CostMeter()
        meter.count_hash(10)
        meter.count_bytes_sent(100)
        snap = meter.snapshot()
        assert snap["hashes"] == 1
        assert snap["bytes_sent"] == 100
        meter.reset()
        assert meter.hashes == 0
        assert meter.bytes_sent == 0

    def test_weighted_cost(self):
        from repro.crypto.meter import CostWeights

        meter = CostMeter()
        meter.count_hash()
        meter.count_combine(10)
        meter.count_verify(2)
        weights = CostWeights(cost_hash=1, cost_combine=0.1, cost_verify=10)
        assert meter.cost(weights) == pytest.approx(1 + 1 + 20)

    def test_null_meter_ignores(self):
        from repro.crypto.meter import NULL_METER

        NULL_METER.count_hash(5)
        NULL_METER.count_sign()
        assert NULL_METER.hashes == 0
        assert NULL_METER.signs == 0
