"""Tests for the ASCII plot renderer."""

import pytest

from repro.bench.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20,
            height=6,
            title="demo",
        )
        assert "demo" in out
        assert "* up" in out and "o down" in out
        assert out.count("\n") >= 8

    def test_extremes_labelled(self):
        out = ascii_plot([0, 10], {"s": [5.0, 1_500_000.0]}, width=12, height=4)
        assert "1.5M" in out
        assert "5" in out

    def test_flat_series(self):
        out = ascii_plot([0, 1], {"flat": [7, 7]}, width=8, height=3)
        assert "*" in out  # no division-by-zero on zero span

    def test_single_point(self):
        out = ascii_plot([5], {"p": [9]})
        assert "*" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"bad": [1]})

    def test_empty(self):
        assert ascii_plot([], {}) == "(empty plot)"

    def test_marks_land_where_expected(self):
        out = ascii_plot([0, 1], {"s": [0, 10]}, width=10, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # max value mark on the top row, min on the bottom row.
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_figure_series_renders(self):
        """Smoke: a real paper series renders without error."""
        from repro.analysis.communication import fig10_series

        rows = fig10_series(5, selectivities=(0.0, 0.25, 0.5, 0.75, 1.0))
        xs = [r[0] for r in rows]
        out = ascii_plot(
            xs,
            {"Naive": [r[1] for r in rows], "VB-tree": [r[2] for r in rows]},
            title="Figure 10(b)",
        )
        assert "Naive" in out and "VB-tree" in out
