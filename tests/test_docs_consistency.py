"""The wire-protocol reference stays complete (tools/check_docs.py).

Tier-1 twin of the CI lint step: every frame class and wire tag in
``repro.edge.transport`` must be documented in
``docs/ARCHITECTURE.md``, every fabriclint ``rule_id`` must have its
ARCHITECTURE.md section 7 table row (and vice versa), and the checker
itself must be able to fail (a gate that cannot fail gates nothing).
"""

import importlib.util
import os

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(ROOT, "tools", "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _empty_rules(tmp_path):
    """A fabriclint rules file registering no rules — lets the frame
    and fault-hook tests isolate their own drift axis."""
    fake_rules = tmp_path / "rules.py"
    fake_rules.write_text("")
    return str(fake_rules)


def test_every_frame_is_documented():
    checker = _load_checker()
    assert checker.check() == []


def test_checker_can_fail(tmp_path):
    """An undocumented frame class and an undocumented tag are both
    reported — the gate is live, not vacuous."""
    checker = _load_checker()
    fake_transport = tmp_path / "transport.py"
    fake_transport.write_text(
        "class DocumentedFrame:\n    pass\n\n"
        "class PhantomFrame:\n    pass\n\n"
        "_FRAME_DOCUMENTED = 0\n"
        "_FRAME_PHANTOM = 99\n"
    )
    fake_doc = tmp_path / "ARCHITECTURE.md"
    fake_rules = _empty_rules(tmp_path)
    fake_doc.write_text("DocumentedFrame\n\n| 0 | DocumentedFrame |\n")
    problems = checker.check(str(fake_transport), str(fake_doc), fake_rules)
    assert any("PhantomFrame" in p for p in problems)
    assert any("99" in p for p in problems)

    fake_doc.write_text(
        "DocumentedFrame PhantomFrame\n\n"
        "| 0 | DocumentedFrame |\n| 99 | PhantomFrame |\n"
    )
    assert checker.check(str(fake_transport), str(fake_doc), fake_rules) == []


def test_fault_hook_table_gated(tmp_path):
    """A FaultInjector field without a fault-hook table row is
    reported; documenting it clears the problem."""
    checker = _load_checker()
    fake_transport = tmp_path / "transport.py"
    fake_transport.write_text(
        "class DocumentedFrame:\n    pass\n\n"
        "_FRAME_DOCUMENTED = 0\n\n"
        "class FaultInjector:\n"
        "    partitioned: bool = False\n"
        "    vanish: bool = False\n\n"
        "    def clear(self) -> None:\n"
        "        pass\n"
    )
    fake_doc = tmp_path / "ARCHITECTURE.md"
    fake_rules = _empty_rules(tmp_path)
    fake_doc.write_text(
        "DocumentedFrame\n\n| 0 | DocumentedFrame |\n\n"
        "| `partitioned` | link down |\n"
    )
    problems = checker.check(str(fake_transport), str(fake_doc), fake_rules)
    assert any("vanish" in p for p in problems)
    assert not any("partitioned" in p for p in problems)

    fake_doc.write_text(
        "DocumentedFrame\n\n| 0 | DocumentedFrame |\n\n"
        "| `partitioned` | link down |\n| `vanish` | gone |\n"
    )
    assert checker.check(str(fake_transport), str(fake_doc), fake_rules) == []


def test_fabriclint_rule_table_gated(tmp_path):
    """Both drift directions are reported: a registered rule without a
    table row, and a table row naming an unregistered rule."""
    checker = _load_checker()
    fake_transport = tmp_path / "transport.py"
    fake_transport.write_text(
        "class DocumentedFrame:\n    pass\n\n_FRAME_DOCUMENTED = 0\n"
    )
    fake_rules = tmp_path / "rules.py"
    fake_rules.write_text(
        "class A:\n    rule_id = \"FL001\"\n\n"
        "class B:\n    rule_id = \"FL999\"\n"
    )
    fake_doc = tmp_path / "ARCHITECTURE.md"
    fake_doc.write_text(
        "DocumentedFrame\n\n| 0 | DocumentedFrame |\n\n"
        "| `FL001` | documented |\n| `FL777` | ghost rule |\n"
    )
    problems = checker.check(
        str(fake_transport), str(fake_doc), str(fake_rules)
    )
    assert any("FL999" in p for p in problems)  # enforced, undocumented
    assert any("FL777" in p for p in problems)  # documented, dead
    assert not any("FL001" in p for p in problems)

    fake_doc.write_text(
        "DocumentedFrame\n\n| 0 | DocumentedFrame |\n\n"
        "| `FL001` | documented |\n| `FL999` | documented |\n"
    )
    assert checker.check(
        str(fake_transport), str(fake_doc), str(fake_rules)
    ) == []


def test_rule_ids_extracted_from_real_catalog():
    """The extractor sees the live fabriclint registry (the gate is
    wired to the real rules file, not a stale list)."""
    checker = _load_checker()
    with open(
        os.path.join(ROOT, "tools", "fabriclint", "rules.py")
    ) as fh:
        ids = checker.fabriclint_rule_ids(fh.read())
    assert ids == ["FL001", "FL002", "FL003", "FL004", "FL005"]


def test_fault_fields_extracted_from_real_transport():
    """The extractor sees the real FaultInjector's fields (the gate is
    wired to the live class, not a stale list)."""
    checker = _load_checker()
    with open(
        os.path.join(ROOT, "src", "repro", "edge", "transport.py")
    ) as fh:
        fields = checker.fault_fields(fh.read())
    assert "partitioned" in fields
    assert "delay" in fields
