"""Sharded deployment over real sockets (``-m socket``).

The multi-process face of the sharded plane: one TCP listener per
signer shard sharing a single reactor, edge OS processes registering
per shard, a scattered range query gathered over TCP and verified
against per-shard keys — and the handshake ``ConfigFrame`` observed on
the wire carrying the versioned shard map, so any one shard teaches a
joining peer the whole placement.
"""

import socket

import pytest

from repro.edge.deploy import ShardedDeployment
from repro.edge.sharding import ShardMap, ShardedCentral
from repro.edge.socket_transport import recv_frame, send_frame
from repro.edge.transport import (
    ConfigFrame,
    HelloFrame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.workloads.generator import TableSpec, generate_table

pytestmark = [pytest.mark.socket, pytest.mark.timeout(120)]

DB = "sharddeploydb"
SHARDS = 2
EDGES_PER_SHARD = 2
SPEC = TableSpec(name="items", rows=64, columns=4, seed=13)


@pytest.fixture
def plane(tmp_path):
    central = ShardedCentral(DB, shards=SHARDS, seed=51, rsa_bits=512)
    schema, rows = generate_table(SPEC)
    central.create_table(schema, rows, partition="range", fanout_override=6)
    deploy = ShardedDeployment(central, log_dir=str(tmp_path / "edge-logs"))
    yield central, deploy
    deploy.shutdown()


class TestShardedDeployment:
    def test_scattered_tcp_query_verified_across_shards(self, plane):
        central, deploy = plane
        for shard_id in range(SHARDS):
            for i in range(EDGES_PER_SHARD):
                deploy.launch_edge(shard_id, f"edge-s{shard_id}-{i}")
        for shard_id in range(SHARDS):
            for i in range(EDGES_PER_SHARD):
                deploy.wait_for_edge(shard_id, f"edge-s{shard_id}-{i}")

        for key in (1001, 1002, 1003):
            central.insert("items", (key, "x", "y", "z"))
        deploy.sync()

        router = deploy.make_router()
        merged = router.range_query("items", low=5, high=1002)
        assert merged.verified
        assert len(merged.parts) == SHARDS
        assert merged.keys == [*range(5, 64), 1001, 1002]
        # Each sub-result verified against its own shard's keys, served
        # by an edge of that shard.
        for shard_id, part in zip(merged.shards, merged.parts, strict=True):
            assert part.edge.startswith(f"edge-s{shard_id}-")

        snap = router.snapshot()
        assert snap["scattered_queries"] == 1
        assert set(snap["shards"]) == set(range(SHARDS))

    def test_handshake_config_frame_carries_shard_map(self, plane):
        central, deploy = plane
        restored_maps = []
        for shard_id in range(SHARDS):
            with socket.create_connection(
                deploy.address(shard_id), timeout=10
            ) as conn:
                send_frame(
                    conn, frame_to_bytes(HelloFrame(edge=f"probe-{shard_id}"))
                )
                data = recv_frame(conn)
            assert data is not None
            config = frame_from_bytes(data)
            assert isinstance(config, ConfigFrame)
            assert config.shard_id == shard_id
            assert config.shard_map is not None
            restored_maps.append(ShardMap.from_wire(config.shard_map))
        # Any one shard teaches the whole placement: the maps agree
        # with the plane and with each other.
        for restored in restored_maps:
            assert restored.version == central.shard_map.version
            for key in (0, 31, 32, 63, 10**6):
                assert restored.shard_for("items", key) == (
                    central.shard_map.shard_for("items", key)
                )
        # Per-shard authenticity: the two shards advertise different
        # public keys in their handshake bundles.
        assert (
            central.shard(0).client_config().keyring.export_records()
            != central.shard(1).client_config().keyring.export_records()
        )
