"""Fan-out engine behaviour: flow control, fault injection, healing,
and concurrent delivery (DESIGN.md section 7)."""

import pytest

from repro.edge.central import CentralServer, ReplicationMode
from repro.edge.transport import FaultInjector
from repro.workloads.generator import TableSpec, generate_table

DB = "fanoutdb"


def make_central(rows=100, **kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=51, **kwargs)
    schema, data = generate_table(
        TableSpec(name="t", rows=rows, columns=4, seed=8)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


class TestSlowEdge:
    def test_write_path_never_waits_on_a_slow_edge(self):
        """Eager inserts complete against the fast edges while a
        frame-holding (slow) edge absorbs frames up to its window and is
        then skipped — the acceptance scenario for per-edge flow
        control."""
        server = make_central(fanout_window=3)
        fast = server.spawn_edge_server("fast")
        slow = server.spawn_edge_server("slow")
        client = server.make_client()
        link = server.fanout.peer("slow").transport
        link.faults.hold = True

        for key in range(9001, 9011):
            server.insert("t", (key, "a", "b", "c"))

        # Fast edge is current and serves fresh, verified data.
        assert server.staleness(fast, "t") == 0
        resp = fast.range_query("t", low=9001, high=9010)
        assert len(resp.result.rows) == 10
        assert client.verify(resp).ok
        # Slow edge lags; the link absorbed at most `window` frames.
        assert server.staleness(slow, "t") > 0
        assert link.queued_frames <= 3
        assert server.fanout.peer("slow").inflight <= 3
        # Slow edge still serves *authentic* (stale) data meanwhile.
        stale = slow.range_query("t", low=9001, high=9010)
        assert stale.result.rows == []
        assert client.verify(stale).ok

    def test_slow_edge_catches_up_after_fault_clears(self):
        server = make_central(fanout_window=2, max_log_entries=4)
        slow = server.spawn_edge_server("slow")
        client = server.make_client()
        link = server.fanout.peer("slow").transport
        link.faults.hold = True

        for key in range(9001, 9013):  # far past log retention
            server.insert("t", (key, "a", "b", "c"))
        assert server.staleness(slow, "t") > 0

        link.faults.clear()
        server.propagate("t")
        # The queued frames only reached an early LSN; the log has been
        # truncated past that cursor, so the heal is a snapshot.
        assert slow.replication_channel.transfers[-1].kind == "snapshot"
        assert server.staleness(slow, "t") == 0
        resp = slow.range_query("t", low=9001, high=9012)
        assert len(resp.result.rows) == 12
        assert client.verify(resp).ok
        slow.replica("t").audit()


class TestPartition:
    def test_partitioned_edge_heals_via_snapshot_when_fault_clears(self):
        """The acceptance scenario: with one edge partitioned, eager
        inserts to the remaining edges complete without waiting on it,
        and the wedged edge heals via snapshot once the fault clears."""
        server = make_central(max_log_entries=4)
        healthy = server.spawn_edge_server("healthy")
        wedged = server.spawn_edge_server("wedged")
        client = server.make_client()
        link = server.fanout.peer("wedged").transport
        link.faults.partitioned = True

        before = len(wedged.replication_channel.transfers)
        for key in range(9001, 9011):
            server.insert("t", (key, "a", "b", "c"))
        # Nothing reached the wedged edge — not even wasted bytes.
        assert len(wedged.replication_channel.transfers) == before
        assert server.staleness(healthy, "t") == 0
        assert server.staleness(wedged, "t") == 10
        assert client.verify(healthy.range_query("t", low=9001, high=9010)).ok

        link.faults.clear()
        shipped = server.propagate("t")
        assert shipped == 1
        assert wedged.replication_channel.transfers[-1].kind == "snapshot"
        assert server.staleness(wedged, "t") == 0
        resp = wedged.range_query("t", low=9001, high=9010)
        assert len(resp.result.rows) == 10
        assert client.verify(resp).ok

    def test_partitioned_edge_catches_up_via_delta_within_retention(self):
        server = make_central()  # default retention: 1024 entries
        wedged = server.spawn_edge_server("wedged")
        link = server.fanout.peer("wedged").transport
        link.faults.partitioned = True
        for key in range(9001, 9006):
            server.insert("t", (key, "a", "b", "c"))
        link.faults.clear()
        server.propagate("t")
        # Log still covers the cursor: one coalesced delta, no snapshot.
        assert wedged.replication_channel.transfers[-1].kind == "delta"
        assert server.staleness(wedged, "t") == 0
        wedged.replica("t").audit()


class TestFrameLoss:
    def test_dropped_delta_is_retransmitted(self):
        server = make_central()
        edge = server.spawn_edge_server("lossy")
        client = server.make_client()
        link = server.fanout.peer("lossy").transport
        link.faults.drop_next = 1
        server.insert("t", (9001, "a", "b", "c"))  # this delta is lost
        assert server.staleness(edge, "t") == 1
        server.insert("t", (9002, "a", "b", "c"))  # resend covers both
        assert server.staleness(edge, "t") == 0
        resp = edge.range_query("t", low=9001, high=9002)
        assert len(resp.result.rows) == 2
        assert client.verify(resp).ok
        edge.replica("t").audit()


class TestNackEscalation:
    def test_gap_nack_retries_from_reported_cursor(self):
        """If the central-side cursor ever disagrees with the edge (here
        forced manually), the edge's gap-nack carries its real cursor
        and the retry succeeds — no snapshot needed."""
        server = make_central()
        edge = server.spawn_edge_server("e1")
        for key in range(9001, 9004):
            server.insert("t", (key, "a", "b", "c"))
        peer = server.fanout.peer("e1")
        peer.acked_lsns["t"] = 0  # central amnesia
        peer.sent_lsns["t"] = 0
        before = len(edge.replication_channel.transfers)
        server.insert("t", (9004, "a", "b", "c"))
        transfers = edge.replication_channel.transfers[before:]
        # First send covers 1..4 -> gap nack; retry from cursor 3 lands.
        assert [t.kind for t in transfers] == ["delta", "delta"]
        assert server.staleness(edge, "t") == 0
        edge.replica("t").audit()

    def test_diverged_nack_heals_with_snapshot_after_the_write(self):
        server = make_central()
        bad = server.spawn_edge_server("bad")
        good = server.spawn_edge_server("good")
        client = server.make_client()
        bad.replica("t").tree.delete(4)  # at-rest structural tampering
        server.delete("t", 4)
        assert bad.replication_channel.transfers[-1].kind == "snapshot"
        assert good.replication_channel.transfers[-1].kind == "delta"
        for edge in (bad, good):
            assert server.staleness(edge, "t") == 0
            assert client.verify(edge.range_query("t", low=0, high=50)).ok


class TestConcurrentDelivery:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_all_edges_converge(self, workers):
        server = make_central(fanout_workers=workers)
        edges = [server.spawn_edge_server(f"e{i}") for i in range(5)]
        client = server.make_client()
        for key in range(9001, 9021):
            server.insert("t", (key, "a", "b", "c"))
        for key in range(0, 20, 4):
            server.delete("t", key)
        for edge in edges:
            assert server.staleness(edge, "t") == 0
            edge.replica("t").audit()
            resp = edge.range_query("t", low=9001, high=9020)
            assert len(resp.result.rows) == 20
            assert client.verify(resp).ok

    def test_identical_cursors_share_one_sealed_payload(self):
        server = make_central(replication=ReplicationMode.LAZY)
        e1 = server.spawn_edge_server("e1")
        e2 = server.spawn_edge_server("e2")
        for key in range(9001, 9011):
            server.insert("t", (key, "a", "b", "c"))
        server.propagate("t")
        d1 = [t for t in e1.replication_channel.transfers if t.kind == "delta"]
        d2 = [t for t in e2.replication_channel.transfers if t.kind == "delta"]
        assert len(d1) == len(d2) == 1
        assert d1[0].nbytes == d2[0].nbytes  # byte-identical batch


class TestSpawnWithFaults:
    def test_no_duplicate_snapshots_while_link_holds_one(self):
        """A slow edge spawned behind a holding link gets exactly ONE
        bootstrap snapshot queued; eager inserts must not enqueue an
        O(tree) snapshot each (regression: needs_snapshot was recomputed
        per pump with no snapshot-in-flight tracking)."""
        server = make_central()
        edge = server.spawn_edge_server(
            "slow", faults=FaultInjector(hold=True)
        )
        for key in range(9001, 9007):
            server.insert("t", (key, "a", "b", "c"))
        link = server.fanout.peer("slow").transport
        kinds = [t.kind for t in edge.replication_channel.transfers]
        assert kinds.count("snapshot") == 1
        link.faults.clear()
        server.propagate("t")
        assert server.staleness(edge, "t") == 0
        edge.replica("t").audit()

    def test_edge_spawned_behind_partition_bootstraps_later(self):
        server = make_central()
        edge = server.spawn_edge_server(
            "late", faults=FaultInjector(partitioned=True)
        )
        assert edge.replicas == {}
        server.fanout.peer("late").transport.faults.clear()
        server.propagate()
        assert server.staleness(edge, "t") == 0
        client = server.make_client()
        assert client.verify(edge.range_query("t", low=0, high=10)).ok
