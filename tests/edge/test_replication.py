"""Delta-based replica maintenance through the full deployment:
eager push, lazy batched pull, staleness in LSNs, snapshot fallbacks."""

import pytest

from repro.edge.central import CentralServer, ReplicationMode
from repro.exceptions import DeltaGapError, StaleDeltaError
from repro.workloads.generator import TableSpec, generate_table

DB = "repldb"


def make_central(replication=ReplicationMode.EAGER, rows=120, **kwargs):
    server = CentralServer(
        db_name=DB, rsa_bits=512, seed=77, replication=replication, **kwargs
    )
    schema, data = generate_table(
        TableSpec(name="t", rows=rows, columns=4, seed=9)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


class TestEagerDeltas:
    def test_insert_ships_delta_not_snapshot(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        bootstrap = edge.replication_channel.bytes_by_kind()
        assert bootstrap.get("snapshot", 0) > 0  # spawn = snapshot
        server.insert("t", (9001, "a", "b", "c"))
        after = edge.replication_channel.bytes_by_kind()
        assert after.get("delta", 0) > 0
        assert after.get("snapshot") == bootstrap.get("snapshot")  # unchanged

    def test_delta_bytes_much_smaller_than_snapshot(self):
        server = make_central(rows=500)
        edge = server.spawn_edge_server("e1")
        snapshot_bytes = edge.replication_channel.bytes_by_kind()["snapshot"]
        server.insert("t", (9001, "a", "b", "c"))
        delta_bytes = edge.replication_channel.bytes_by_kind()["delta"]
        assert delta_bytes * 10 < snapshot_bytes

    def test_updates_verify_on_every_edge(self):
        server = make_central()
        edges = [server.spawn_edge_server(f"e{i}") for i in range(3)]
        client = server.make_client()
        server.insert("t", (9001, "a", "b", "c"))
        server.delete("t", 10)
        for edge in edges:
            resp = edge.range_query("t", low=0, high=10_000)
            assert client.verify(resp).ok
            keys = set(resp.result.keys)
            assert 9001 in keys and 10 not in keys
            edge.replica("t").audit()

    def test_many_updates_keep_replicas_structurally_identical(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        for key in range(10_000, 10_060):
            server.insert("t", (key, "x", "y", "z"))
        for key in range(0, 40, 2):
            server.delete("t", key)
        replica = edge.replica("t")
        central_tree = server.vbtrees["t"]
        replica.tree.validate()
        replica.audit()
        assert replica.tree.node_count() == central_tree.tree.node_count()
        assert server.staleness(edge, "t") == 0

    def test_multi_row_view_maintenance_replicates_every_delta(self):
        """One base-table insert can add several view rows; every view
        mutation's delta must be recorded and applied (regression: a
        single-slot last_delta dropped all but the final one)."""
        from repro.db.schema import Column, TableSchema
        from repro.db.types import IntType

        server = CentralServer(db_name=DB, rsa_bits=512, seed=41)
        a = TableSchema(
            "a", (Column("k", IntType()), Column("x", IntType())), key="k"
        )
        c = TableSchema(
            "c", (Column("id", IntType()), Column("grp", IntType())), key="id"
        )
        server.create_table(a, [(1, 10)])
        server.create_table(c, [(1, 7), (2, 7), (3, 7)])  # duplicated join key
        server.create_join_view("ac", "a", "c", "k", "grp")
        edge = server.spawn_edge_server("e")
        client = server.make_client()
        server.insert("a", (7, 70))  # joins all three c-rows at once
        replica = edge.replica("ac")
        assert len(list(replica.rows())) == len(
            list(server.vbtrees["ac"].rows())
        )
        replica.audit()
        resp = edge.range_query("ac")
        assert client.verify(resp).ok
        assert server.staleness(edge, "ac") == 0

    def test_table_created_after_spawn_syncs_via_snapshot(self):
        from repro.db.schema import Column, TableSchema
        from repro.db.types import IntType

        server = make_central()
        edge = server.spawn_edge_server("e1")
        late = TableSchema(
            "late", (Column("k", IntType()), Column("v", IntType())), key="k"
        )
        server.create_table(late, [(1, 10), (2, 20)])
        server.insert("late", (3, 30))
        client = server.make_client()
        resp = edge.range_query("late", low=0, high=10)
        assert len(resp.result.rows) == 3
        assert client.verify(resp).ok


class TestLazyLog:
    def test_staleness_reported_in_lsns(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        for key in (9001, 9002, 9003):
            server.insert("t", (key, "a", "b", "c"))
        assert server.staleness(edge, "t") == 3
        server.propagate()
        assert server.staleness(edge, "t") == 0

    def test_edge_serves_stale_until_propagate(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        client = server.make_client()
        server.insert("t", (9001, "a", "b", "c"))
        resp = edge.range_query("t", low=9001, high=9001)
        assert resp.result.rows == []       # stale result...
        assert client.verify(resp).ok       # ...but authentic (old state)
        server.propagate()
        resp = edge.range_query("t", low=9001, high=9001)
        assert len(resp.result.rows) == 1
        assert client.verify(resp).ok

    def test_pull_coalesces_pending_deltas_into_one_transfer(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        for key in range(9001, 9021):
            server.insert("t", (key, "a", "b", "c"))
        before = len(edge.replication_channel.transfers)
        shipped = server.propagate("t")
        assert shipped == 1  # 20 mutations, one coalesced batch
        transfers = edge.replication_channel.transfers[before:]
        assert len(transfers) == 1 and transfers[0].kind == "delta"
        edge.replica("t").audit()
        assert server.staleness(edge, "t") == 0

    def test_coalesced_batch_cheaper_than_individual_deltas(self):
        def pending_bytes(coalesced: bool) -> int:
            server = make_central(replication=ReplicationMode.LAZY)
            edge = server.spawn_edge_server("lazy")
            for key in range(9001, 9021):
                server.insert("t", (key, "a", "b", "c"))
            if not coalesced:
                return sum(
                    e.nbytes
                    for e in server.replicator.log_for("t").entries_since(0)
                )
            server.propagate("t")
            return edge.replication_channel.bytes_by_kind()["delta"]

        assert pending_bytes(True) < pending_bytes(False)

    def test_log_truncation_falls_back_to_snapshot(self):
        server = make_central(
            replication=ReplicationMode.LAZY, max_log_entries=5
        )
        edge = server.spawn_edge_server("lazy")
        for key in range(9001, 9021):  # 20 deltas, log keeps 5
            server.insert("t", (key, "a", "b", "c"))
        server.propagate("t")
        kinds = [t.kind for t in edge.replication_channel.transfers]
        assert kinds[-1] == "snapshot"
        client = server.make_client()
        resp = edge.range_query("t", low=9001, high=9020)
        assert len(resp.result.rows) == 20
        assert client.verify(resp).ok


class TestKeyRotation:
    def test_rotation_forces_snapshot_resync(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        client = server.make_client()
        server.insert("t", (9001, "a", "b", "c"))
        server.propagate()
        assert server.staleness(edge, "t") == 0

        old_epoch = server.keyring.current_epoch
        server.rotate_key(seed=78)
        server.keyring.tick()
        assert server.keyring.current_epoch == old_epoch + 1
        assert server.staleness(edge, "t") > 0  # the rotation barrier counts

        # Clients detect the stale epoch before resync...
        verdict = client.verify(edge.range_query("t", low=0, high=10))
        assert not verdict.ok and "stale" in verdict.reason

        # ...and the resync is a snapshot, after which queries verify.
        before = len(edge.replication_channel.transfers)
        server.propagate()
        assert edge.replication_channel.transfers[before].kind == "snapshot"
        assert edge.replica_epochs["t"] == server.keyring.current_epoch
        assert server.staleness(edge, "t") == 0
        assert client.verify(edge.range_query("t", low=0, high=10)).ok

    def test_eager_rotation_resyncs_immediately(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        server.rotate_key(seed=79)
        server.keyring.tick()
        assert server.staleness(edge, "t") == 0
        assert client.verify(edge.range_query("t", low=0, high=10)).ok


class TestDivergenceHealing:
    def test_diverged_edge_healed_by_snapshot_without_wedging_others(self):
        """An edge whose replica was tampered at rest chokes on the next
        delta; the central server heals it with a snapshot and the other
        edges keep receiving deltas (regression: the ReplicaDeltaError
        used to escape CentralServer.delete and wedge replication)."""
        server = make_central()
        bad, good = server.spawn_edge_server("bad"), server.spawn_edge_server("good")
        client = server.make_client()
        bad.replica("t").tree.delete(4)  # at-rest structural tampering
        server.delete("t", 4)            # delta's delete op fails on `bad`
        assert bad.replication_channel.transfers[-1].kind == "snapshot"
        assert good.replication_channel.transfers[-1].kind == "delta"
        for edge in (bad, good):
            assert server.staleness(edge, "t") == 0
            edge.replica("t").audit()
            assert client.verify(edge.range_query("t", low=0, high=50)).ok
        # And the healed edge continues on the delta path afterwards.
        server.insert("t", (9100, "a", "b", "c"))
        assert bad.replication_channel.transfers[-1].kind == "delta"

    def test_denied_insert_lock_leaves_no_divergence(self):
        """A LockError during insert must leave the central tree — and
        therefore the delta log — untouched (regression: raw_insert ran
        before locking, creating phantom rows replicas never saw)."""
        from repro.core.update import AuthenticatedUpdater, digest_resource
        from repro.db.transactions import TransactionManager
        from repro.exceptions import LockError

        server = make_central()
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        vbt = server.vbtrees["t"]
        tm = server.txn_manager
        blocker = tm.begin()
        root_resource = digest_resource("t", vbt.tree.root.node_id)
        assert blocker.lock_exclusive(root_resource)
        size_before = len(vbt.tree)
        with pytest.raises(LockError):
            server.insert("t", (9200, "a", "b", "c"))
        assert len(vbt.tree) == size_before  # nothing mutated
        assert server.replicator.log_for("t").last_lsn == 0  # nothing logged
        blocker.commit()
        # Replication continues cleanly afterwards.
        server.insert("t", (9200, "a", "b", "c"))
        resp = edge.range_query("t", low=9200, high=9200)
        assert len(resp.result.rows) == 1
        assert client.verify(resp).ok
        edge.replica("t").audit()


class TestIdempotence:
    def test_replayed_payload_rejected_and_replica_unchanged(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        server.insert("t", (9001, "a", "b", "c"))
        payload = server.replicator.log_for("t").entries_since(0)[0].payload
        edge.apply_delta("t", payload)
        with pytest.raises(StaleDeltaError):
            edge.apply_delta("t", payload)
        edge.replica("t").audit()
        # The out-of-band apply bypassed the transport, so the central
        # cursor still trails; a propagate round-trip reconciles it via
        # the edge's stale-nack (which carries the real cursor).
        assert server.staleness(edge, "t") == 1
        server.propagate("t")
        assert server.staleness(edge, "t") == 0

    def test_out_of_order_payload_rejected(self):
        server = make_central(replication=ReplicationMode.LAZY)
        edge = server.spawn_edge_server("lazy")
        server.insert("t", (9001, "a", "b", "c"))
        server.insert("t", (9002, "a", "b", "c"))
        entries = server.replicator.log_for("t").entries_since(0)
        with pytest.raises(DeltaGapError):
            edge.apply_delta("t", entries[1].payload)  # lsn 2 before 1
        edge.apply_delta("t", entries[0].payload)
        edge.apply_delta("t", entries[1].payload)
        edge.replica("t").audit()
