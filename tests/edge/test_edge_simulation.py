"""End-to-end edge-computing simulation tests (Figure 2 deployment)."""

import pytest

from repro.db.expressions import Comparison
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table

DB = "edgedb"


@pytest.fixture(scope="module")
def central():
    server = CentralServer(db_name=DB, rsa_bits=512, seed=11, enable_naive=True)
    spec = TableSpec(name="items", rows=200, columns=6, seed=3)
    schema, rows = generate_table(spec)
    server.create_table(schema, rows, fanout_override=8)
    return server


@pytest.fixture
def edge(central):
    e = central.spawn_edge_server("edge-test")
    yield e
    central._edges.remove(e)


@pytest.fixture
def client(central):
    return central.make_client()


class TestQueryFlow:
    def test_range_query_verifies(self, edge, client):
        resp = edge.range_query("items", low=10, high=60)
        assert len(resp.result.rows) == 51
        assert client.verify(resp).ok
        assert resp.wire_bytes > 0
        assert resp.transfer.seconds > 0

    def test_projection_verifies(self, edge, client):
        resp = edge.range_query("items", low=0, high=40, columns=("id", "a1"))
        assert resp.result.columns == ("id", "a1")
        assert client.verify(resp).ok

    def test_nonkey_select_verifies(self, edge, client):
        resp = edge.select("items", Comparison("id", ">=", 150))
        assert client.verify(resp).ok

    def test_io_accounting(self, edge):
        edge.range_query("items", low=5, high=6)
        assert edge.io_reads_last_query >= 1

    def test_channel_accumulates(self, edge):
        before = edge.channel.total_bytes
        edge.range_query("items", low=0, high=100)
        assert edge.channel.total_bytes > before

    def test_naive_query_verifies(self, edge, client):
        result, nbytes = edge.naive_range_query("items", low=10, high=40)
        assert client.verify_naive(result)
        assert nbytes > 0

    def test_missing_replica_raises(self, central, edge):
        from repro.exceptions import ReplicationError

        with pytest.raises(ReplicationError):
            edge.replica("ghost")

    def test_client_cost_snapshot(self, edge, client):
        client.verify(edge.range_query("items", low=0, high=20))
        snap = client.cost_snapshot()
        assert snap["hashes"] > 0
        assert snap["verifies"] > 0


class TestUpdatesAndReplication:
    def test_insert_propagates_eagerly(self, central, client):
        edge = central.spawn_edge_server("edge-ins")
        try:
            central.insert("items", (5000, *["x" * 3] * 5))
            resp = edge.range_query("items", low=5000, high=5000)
            assert len(resp.result.rows) == 1
            assert client.verify(resp).ok
        finally:
            central._edges.remove(edge)

    def test_delete_propagates_eagerly(self, central, client):
        central.insert("items", (6000, *["y" * 3] * 5))
        edge = central.spawn_edge_server("edge-del")
        try:
            central.delete("items", 6000)
            resp = edge.range_query("items", low=6000, high=6000)
            assert resp.result.rows == []
            assert client.verify(resp).ok
        finally:
            central._edges.remove(edge)

    def test_lazy_replication_staleness(self):
        server = CentralServer(
            db_name="lazydb",
            rsa_bits=512,
            seed=5,
            replication=ReplicationMode.LAZY,
        )
        schema, rows = generate_table(TableSpec(name="t", rows=50, columns=4))
        server.create_table(schema, rows, fanout_override=6)
        edge = server.spawn_edge_server("lazy-edge")
        server.insert("t", (900, "a", "b", "c"))
        assert server.staleness(edge, "t") == 1
        server.propagate()
        assert server.staleness(edge, "t") == 0
        resp = edge.range_query("t", low=900, high=900)
        assert len(resp.result.rows) == 1

    def test_join_view_queries_verify(self, client):
        server = CentralServer(db_name=DB, rsa_bits=512, seed=11)
        from repro.db.schema import Column, TableSchema
        from repro.db.types import IntType, VarcharType

        orders = TableSchema(
            "orders",
            (
                Column("oid", IntType()),
                Column("cust", IntType()),
                Column("amt", IntType()),
            ),
            key="oid",
        )
        customers = TableSchema(
            "customers",
            (Column("cust", IntType()), Column("name", VarcharType(capacity=10))),
            key="cust",
        )
        server.create_table(orders, [(i, i % 5, i * 10) for i in range(30)])
        server.create_table(customers, [(i, f"c{i}") for i in range(5)])
        server.create_join_view("order_cust", "orders", "customers", "cust", "cust")
        edge = server.spawn_edge_server("edge-join")
        view_client = server.make_client()
        resp = edge.range_query("order_cust", low=0, high=10)
        assert len(resp.result.rows) == 11
        assert view_client.verify(resp).ok

    def test_view_maintained_on_base_insert(self):
        server = CentralServer(db_name="viewdb", rsa_bits=512, seed=2)
        from repro.db.schema import Column, TableSchema
        from repro.db.types import IntType

        a = TableSchema(
            "a", (Column("k", IntType()), Column("x", IntType())), key="k"
        )
        b = TableSchema(
            "b", (Column("k2", IntType()), Column("y", IntType())), key="k2"
        )
        server.create_table(a, [(1, 10), (2, 20)])
        server.create_table(b, [(1, 100), (2, 200)])
        server.create_join_view("ab", "a", "b", "k", "k2")
        edge = server.spawn_edge_server("e")
        client = server.make_client()
        server.insert("a", (3, 30))
        server.insert("b", (3, 300))
        resp = edge.range_query("ab")
        # After both inserts the view has 3 join rows... plus the new pair.
        assert client.verify(resp).ok
        joined_keys = {tuple(r[:1]) for r in resp.result.rows}
        assert len(resp.result.rows) >= 3
