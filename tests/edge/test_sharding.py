"""Sharded central plane test battery (DESIGN.md section 12).

Four layers, all deterministic:

* **Stable hashing** — shard assignment must be a pure function of
  ``(value, seed)``: the same table routes to the same shard in *other
  processes* (checked with subprocesses under different
  ``PYTHONHASHSEED`` values, which would scatter the builtin ``hash``).
* **Shard map** — half-open range semantics: a boundary key lands in
  exactly one shard (the range *starting* at it), scatter plans clamp
  inclusive sub-bounds correctly, and the map survives its wire form.
* **Sharded writes** — every insert lands on exactly one shard, and a
  shard's results verify *only* against that shard's public keys.
* **Scatter/gather under attack** — a tampered sub-result from one
  shard is REJECTed and failed over inside that shard without
  discarding the other shards' verified sub-results; quarantine never
  crosses a shard boundary.
"""

import os
import subprocess
import sys

import pytest

from repro.db.expressions import Comparison
from repro.edge.adversary import ResponseTamper, ValueTamper
from repro.edge.central import CentralServer
from repro.edge.sharding import (
    ShardMap,
    ShardedCentral,
    boundaries_from_keys,
    stable_hash,
)
from repro.edge.transport import (
    ConfigFrame,
    config_to_frame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import ReplicationError, RouterError, SchemaError
from repro.workloads.generator import TableSpec, generate_table

DB = "sharddb"


def sharded_fabric(shards=4, rows=48, edges_per_shard=2):
    """A range-partitioned table on a small sharded plane with edges."""
    central = ShardedCentral(DB, shards=shards, seed=41, rsa_bits=512)
    schema, seed_rows = generate_table(
        TableSpec(name="items", rows=rows, columns=4, seed=9)
    )
    central.create_table(
        schema, seed_rows, partition="range", fanout_override=6
    )
    fleets = central.spawn_edge_fleet(per_shard=edges_per_shard)
    return central, fleets


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------


class TestStableHash:
    def test_deterministic_and_seed_dependent(self):
        assert stable_hash("items", 7) == stable_hash("items", 7)
        assert stable_hash("items", 7) != stable_hash("items", 8)
        assert stable_hash("items", 7) != stable_hash("other", 7)
        assert stable_hash(12345) == stable_hash(12345)

    def test_cross_process_stability(self):
        """The assignment hash must agree across processes — including
        ones whose builtin ``hash()`` is randomized differently."""
        script = (
            "from repro.edge.sharding import stable_hash;"
            "print(stable_hash('items', 7), stable_hash(99, 3))"
        )
        outputs = set()
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (
                    os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                    env.get("PYTHONPATH", ""),
                ) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout.strip())
        assert outputs == {f"{stable_hash('items', 7)} {stable_hash(99, 3)}"}


# ---------------------------------------------------------------------------
# Shard map semantics
# ---------------------------------------------------------------------------


class TestShardMap:
    def make_map(self):
        shard_map = ShardMap(nshards=4, seed=5)
        shard_map.place_range_table("items", (100, 200, 300))
        return shard_map

    def test_boundary_key_lands_in_exactly_one_shard(self):
        """Half-open ``[lo, hi)``: a key equal to a boundary belongs to
        the range *starting* at that boundary, and to no other."""
        shard_map = self.make_map()
        assert shard_map.shard_for("items", 99) == 0
        assert shard_map.shard_for("items", 100) == 1
        assert shard_map.shard_for("items", 199) == 1
        assert shard_map.shard_for("items", 200) == 2
        assert shard_map.shard_for("items", 300) == 3
        # Exhaustive: every key in the domain has exactly one owner, and
        # ownership is monotone in the key.
        owners = [shard_map.shard_for("items", k) for k in range(0, 400)]
        assert sorted(owners) == owners
        assert set(owners) == {0, 1, 2, 3}

    def test_plan_clamps_inclusive_bounds(self):
        shard_map = self.make_map()
        # Full scatter: inclusive upper clamp of a range ending at b is
        # b - 1; the outer ends stay unbounded.
        assert shard_map.plan("items", None, None) == [
            (0, None, 99), (1, 100, 199), (2, 200, 299), (3, 300, None),
        ]
        # Query inside one shard's range never scatters.
        assert shard_map.plan("items", 120, 180) == [(1, 120, 180)]
        # Boundary-straddling query visits both owners, clamped.
        assert shard_map.plan("items", 150, 250) == [
            (1, 150, 199), (2, 200, 250),
        ]
        # A query left of every boundary touches only shard 0.
        assert shard_map.plan("items", None, 42) == [(0, None, 42)]

    def test_hash_placement_is_stable_and_exclusive(self):
        a = ShardMap(nshards=4, seed=5)
        b = ShardMap(nshards=4, seed=5)
        assert a.place_table("users") == b.place_table("users")
        assert a.shards_for_table("users") == (a.shard_for("users", 1),)
        with pytest.raises(SchemaError):
            a.place_table("users")

    def test_wire_round_trip_routes_identically(self):
        shard_map = self.make_map()
        shard_map.place_table("users", shard=2)
        restored = ShardMap.from_wire(shard_map.to_wire())
        assert restored.version == shard_map.version
        assert restored.nshards == shard_map.nshards
        for key in (0, 99, 100, 250, 300, 10**9):
            assert restored.shard_for("items", key) == shard_map.shard_for(
                "items", key
            )
        assert restored.shard_for("users", 1) == 2
        assert restored.plan("items", 150, 250) == shard_map.plan(
            "items", 150, 250
        )

    def test_boundaries_from_keys(self):
        assert boundaries_from_keys(range(0, 80, 2), 4) == (20, 40, 60)
        with pytest.raises(ReplicationError):
            boundaries_from_keys([1, 2], 4)

    def test_validation(self):
        with pytest.raises(ReplicationError):
            ShardMap(nshards=0)
        shard_map = ShardMap(nshards=3)
        with pytest.raises(ReplicationError):
            shard_map.place_range_table("t", (1,))  # needs 2 boundaries
        with pytest.raises(ReplicationError):
            shard_map.place_range_table("t", (5, 1))  # unsorted
        with pytest.raises(SchemaError):
            shard_map.shard_for("missing", 1)


# ---------------------------------------------------------------------------
# Sharded writes & per-shard keys
# ---------------------------------------------------------------------------


class TestShardedWrites:
    def test_insert_lands_on_exactly_one_shard(self):
        central, _fleets = sharded_fabric()
        before = [
            len(s.tables["items"]) for s in central.shards
        ]
        owner = central.shard_for("items", 1001)
        central.insert("items", (1001, "x", "y", "z"))
        after = [len(s.tables["items"]) for s in central.shards]
        for shard_id, (b, a) in enumerate(zip(before, after, strict=True)):
            assert a - b == (1 if shard_id == owner else 0)
        assert central.total_rows("items") == sum(before) + 1

    def test_delete_routes_to_owner(self):
        central, _fleets = sharded_fabric()
        total = central.total_rows("items")
        central.delete("items", 10)
        assert central.total_rows("items") == total - 1

    def test_per_shard_keys_do_not_cross_verify(self):
        """Shard A's signed results must fail verification under shard
        B's key ring — per-shard authenticity is what confines a
        compromised signer to its own partition."""
        central, fleets = sharded_fabric()
        plan = central.shard_map.plan("items", None, None)
        shard_a, lo, hi = plan[0]
        response = fleets[shard_a][0].range_query("items", low=lo, high=hi)
        assert central.shard(shard_a).make_client().verify(response.result).ok
        verdict = central.shard(shard_a + 1).make_client().verify(
            response.result
        )
        assert not verdict.ok

    def test_fanout_is_isolated_per_shard(self):
        """Each shard's fan-out engine serves only its own fleet, and
        an insert ships bytes down *only* the owning shard's links —
        per-shard fan-out cost is directly observable."""
        central, fleets = sharded_fabric()
        owner = central.shard_for("items", 2001)
        before = {
            shard_id: {
                name: peer["bytes_down"]
                for name, peer in central.shard(shard_id).fanout.stats().items()
            }
            for shard_id in range(central.nshards)
        }
        assert all(
            set(stats) == {e.name for e in fleets[shard_id]}
            for shard_id, stats in before.items()
        )
        central.insert("items", (2001, "x", "y", "z"))
        for shard_id in range(central.nshards):
            after = central.shard(shard_id).fanout.stats()
            for name, peer in after.items():
                grew = peer["bytes_down"] > before[shard_id][name]
                assert grew == (shard_id == owner), (shard_id, name)
                assert peer["inflight"] == 0  # eager mode drains fully
                if shard_id == owner:
                    assert peer["acked_lsns"]["items"] > 0

    def test_shard_key_rotation_is_local(self):
        central, fleets = sharded_fabric()
        central.rotate_key(0)
        plan = central.shard_map.plan("items", None, None)
        for shard_id, lo, hi in plan:
            response = fleets[shard_id][0].range_query("items", low=lo, high=hi)
            assert central.shard(shard_id).make_client().verify(
                response.result
            ).ok


# ---------------------------------------------------------------------------
# Scatter/gather under attack
# ---------------------------------------------------------------------------


class TestScatterGatherUnderAttack:
    def test_merged_range_query_matches_unsharded(self):
        central, _fleets = sharded_fabric()
        schema, seed_rows = generate_table(
            TableSpec(name="items", rows=48, columns=4, seed=9)
        )
        single = CentralServer(DB, seed=41, rsa_bits=512)
        single.create_table(schema, seed_rows, fanout_override=6)
        edge = single.spawn_edge_server("ref-edge")

        merged = central.make_router().range_query("items", low=2, high=45)
        reference = edge.range_query("items", low=2, high=45)
        assert merged.verified
        assert merged.keys == reference.result.keys
        assert merged.rows == reference.result.rows

    def test_tampered_shard_fails_over_without_discarding_others(self):
        """One shard serves tampered data: that shard REJECTs and fails
        over to its healthy sibling; every other shard's verified
        sub-result is kept and the merged answer still verifies."""
        central, fleets = sharded_fabric()
        router = central.make_router()
        bad_shard = 1
        bad_edge = fleets[bad_shard][0]
        ResponseTamper(row_index=0, column_index=1, new_value="mitm").install(
            bad_edge
        )

        rejected: list[str] = []
        for _ in range(4):  # round-robin lands on the tampered edge
            merged = router.range_query("items", low=None, high=None)
            assert merged.verified
            assert len(merged.parts) == central.nshards
            rejected.extend(merged.rejected)
        assert bad_edge.name in rejected
        # Quarantine is confined to the tampering shard.
        assert router.router_for(bad_shard).stats()[bad_edge.name].quarantined
        for shard_id in range(central.nshards):
            if shard_id == bad_shard:
                continue
            for name, stats in router.router_for(shard_id).stats().items():
                assert not stats.quarantined, (shard_id, name)
        # The merged answer equals the untampered one.
        clean = central.make_router().range_query("items")
        assert merged.keys == clean.keys and merged.rows == clean.rows

    def test_whole_shard_tampered_raises_but_only_that_shard(self):
        central, fleets = sharded_fabric()
        router = central.make_router()
        for edge in fleets[2]:  # shard 2 owns [24, 36) of the 48 keys
            ValueTamper(
                table="items", key=25, column="a1", new_value="evil"
            ).apply(edge)
        with pytest.raises(RouterError):
            router.range_query("items")
        # The other shards' routers saw no rejects at all.
        for shard_id in (0, 1, 3):
            assert router.router_for(shard_id).rejects == 0

    def test_secondary_and_select_scatter_to_all_shards(self):
        central, _fleets = sharded_fabric()
        central.create_secondary_index("items", "a1")
        router = central.make_router()
        by_attr = router.secondary_range_query("items", "a1")
        assert by_attr.verified and len(by_attr.parts) == central.nshards
        assert sorted(by_attr.keys) == sorted(
            central.make_router().range_query("items").keys
        )
        picked = router.select_query("items", Comparison("id", "<", 10))
        assert picked.verified
        assert sorted(picked.keys) == list(range(0, 10))
        assert router.scattered_queries == 2


# ---------------------------------------------------------------------------
# ConfigFrame wire compatibility
# ---------------------------------------------------------------------------


class TestConfigFrameShardWire:
    def test_unsharded_frame_is_byte_identical_to_pre_shard_protocol(self):
        """The shard fields ride as optional trailing bytes: an
        unsharded central's config frame must encode to exactly the
        bytes a pre-sharding peer expects (and emitted)."""
        central = CentralServer(DB, seed=41, rsa_bits=512)
        frame = config_to_frame(central.client_config())
        encoded = frame_to_bytes(frame)
        legacy = ConfigFrame(
            db_name=frame.db_name, policy=frame.policy, grace=frame.grace,
            clock=frame.clock, epochs=frame.epochs,
            ack_every=frame.ack_every, ack_bytes=frame.ack_bytes,
        )
        assert encoded == frame_to_bytes(legacy)
        decoded = frame_from_bytes(encoded)
        assert decoded.shard_id == -1 and decoded.shard_map is None

    def test_sharded_frame_round_trips_map_and_id(self):
        central, _fleets = sharded_fabric(shards=3, rows=24)
        frame = config_to_frame(
            central.shard(1).client_config(),
            shard_id=1,
            shard_map=central.shard_map.to_wire(),
        )
        decoded = frame_from_bytes(frame_to_bytes(frame))
        assert decoded.shard_id == 1
        restored = ShardMap.from_wire(decoded.shard_map)
        for key in (0, 7, 8, 15, 16, 47, 10**6):
            assert restored.shard_for("items", key) == (
                central.shard_map.shard_for("items", key)
            )

    def test_shard_id_without_map_stays_legacy_bytes(self):
        """A shard id travels only alongside a map — without one the
        frame stays in the legacy encoding (nothing trailing)."""
        central = CentralServer(DB, seed=41, rsa_bits=512)
        plain = config_to_frame(central.client_config())
        tagged = config_to_frame(central.client_config(), shard_id=3)
        assert frame_to_bytes(plain) == frame_to_bytes(tagged)
