"""Event-loop fan-out: reactor, decoder, and backpressure tests.

Covers the single-threaded non-blocking delivery path (DESIGN.md
section 11) end to end:

* :class:`~repro.edge.socket_transport.FrameDecoder` — torn-frame
  fuzzing against a naive bytes-append reference decoder (the old
  implementation), proving the zero-copy ring buffer yields the exact
  same frame sequence under arbitrary TCP fragmentation.
* :class:`~repro.edge.event_loop.EdgeEventLoop` — vectored-write
  coalescing (a whole queued batch rides **one** ``sendmsg``), inbound
  decoding, gate parking, and same-spin handler replies.
* :class:`~repro.edge.event_loop.ReactorTransport` — fault-injection
  outcome and byte-metering parity with
  :class:`~repro.edge.transport.InProcessTransport`.
* Reactor deployments — :class:`~repro.edge.event_loop.EdgeHost` edges
  over real loopback TCP against a :class:`~repro.edge.deploy.Deployment`
  in both I/O modes: end-to-end replication + verified queries, the
  slow-edge backpressure regression (a held edge parks its queue and
  never delays a healthy edge), syscall coalescing, and exact
  delta/snapshot byte parity across in-process / reactor / threaded
  media.

Everything here is single-process and hermetic (socketpairs and
loopback listeners, no subprocesses), so unlike ``test_deploy.py``
these tests run in tier-1; the ``event_loop`` marker additionally
selects them for the dedicated CI job.
"""

import random
import select as select_mod
import socket
import time

import pytest

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment
from repro.edge.event_loop import EdgeEventLoop, EdgeHost, ReactorTransport
from repro.edge.socket_transport import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
)
from repro.edge.transport import (
    DeltaFrame,
    FaultInjector,
    InProcessTransport,
    frame_to_bytes,
)
from repro.exceptions import TransportError
from repro.workloads.generator import TableSpec, generate_table

pytestmark = [pytest.mark.event_loop, pytest.mark.timeout(120)]


# ---------------------------------------------------------------------------
# FrameDecoder: torn-frame fuzzing against the bytes-append reference
# ---------------------------------------------------------------------------


class _NaiveDecoder:
    """The decoder this PR replaced: append every recv to a ``bytes``.

    Kept inline as the fuzz oracle — quadratic and allocation-happy,
    but obviously correct."""

    def __init__(self):
        self.buf = b""

    def feed(self, data):
        self.buf += bytes(data)

    def next_frame(self):
        if len(self.buf) < FRAME_HEADER.size:
            return None
        (length,) = FRAME_HEADER.unpack_from(self.buf, 0)
        end = FRAME_HEADER.size + length
        if len(self.buf) < end:
            return None
        data = self.buf[FRAME_HEADER.size:end]
        self.buf = self.buf[end:]
        return data


def _drain(decoder):
    frames = []
    while (frame := decoder.next_frame()) is not None:
        frames.append(frame)
    return frames


class TestFrameDecoder:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_torn_frame_fuzz_matches_reference(self, seed):
        """Random frame sizes, random split points: the ring buffer and
        the naive reference must pop byte-identical frame sequences at
        every step, whichever way TCP fragments the stream."""
        rng = random.Random(seed)
        sizes = [0, 1, 2, 3, FRAME_HEADER.size, 64, 1000, 5000]
        frames = [
            rng.randbytes(rng.choice(sizes) if rng.random() < 0.8
                          else rng.randint(0, 200))
            for _ in range(250)
        ]
        stream = b"".join(
            FRAME_HEADER.pack(len(f)) + f for f in frames
        )
        ring = FrameDecoder(initial=8)  # tiny: force growth + compaction
        naive = _NaiveDecoder()
        got_ring, got_naive = [], []
        pos = 0
        while pos < len(stream):
            chunk = stream[pos:pos + rng.randint(1, 97)]
            pos += len(chunk)
            if rng.random() < 0.5:
                naive.feed(chunk)
                ring.feed(chunk)
            else:
                # The recv_into path: ask for a (possibly larger) view,
                # commit only what "arrived".
                view = ring.writable(len(chunk) + rng.randint(0, 64))
                view[:len(chunk)] = chunk
                ring.wrote(len(chunk))
                naive.feed(chunk)
            got_ring.extend(_drain(ring))
            got_naive.extend(_drain(naive))
            assert got_ring == got_naive
        assert got_ring == frames
        assert len(ring) == 0 and naive.buf == b""

    def test_implausible_length_header_raises(self):
        decoder = FrameDecoder()
        decoder.feed(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError):
            decoder.next_frame()

    def test_empty_frames_and_rewind(self):
        decoder = FrameDecoder()
        decoder.feed(FRAME_HEADER.pack(0) * 3)
        assert _drain(decoder) == [b"", b"", b""]
        # Fully drained: the buffer rewound instead of compacting.
        assert len(decoder) == 0
        assert decoder._head == 0 and decoder._tail == 0

    def test_growth_beyond_initial_capacity(self):
        payload = bytes(range(256)) * 512  # 128 KiB through an 8-byte buffer
        decoder = FrameDecoder(initial=8)
        decoder.feed(FRAME_HEADER.pack(len(payload)))
        for i in range(0, len(payload), 4096):
            decoder.feed(payload[i:i + 4096])
        assert decoder.next_frame() == payload
        assert decoder.next_frame() is None


# ---------------------------------------------------------------------------
# EdgeEventLoop: coalescing, inbound decode, gates
# ---------------------------------------------------------------------------


def _recv_exact(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        assert chunk, "peer closed mid-frame"
        data += chunk
    return data


def _read_frames(sock, count, timeout=5.0):
    sock.settimeout(timeout)
    frames = []
    for _ in range(count):
        (length,) = FRAME_HEADER.unpack(_recv_exact(sock, FRAME_HEADER.size))
        frames.append(_recv_exact(sock, length))
    return frames


@pytest.fixture
def loop_pair():
    loop = EdgeEventLoop()
    ours, theirs = socket.socketpair()
    yield loop, ours, theirs
    loop.close()
    try:
        theirs.close()
    except OSError:
        pass


class TestEdgeEventLoop:
    def test_whole_batch_ships_in_one_sendmsg(self, loop_pair):
        """The tentpole's syscall claim, at the unit level: fifty frames
        queued across pump cycles leave in exactly one vectored write."""
        loop, ours, theirs = loop_pair
        conn = loop.register("edge", ours)
        frames = [b"frame-%03d" % i for i in range(50)]
        for frame in frames:
            loop.enqueue(conn, frame)
        # Read-collect mode (what the pump uses): nothing may leave.
        loop.run_once(0.0, flush_writes=False)
        assert loop.syscalls["sendmsg"] == 0
        assert conn.queued_bytes > 0
        # The flush: one spin, one syscall, all fifty frames.
        loop.run_once(0.0)
        assert loop.syscalls["sendmsg"] == 1
        assert _read_frames(theirs, 50) == frames
        assert not conn.out and not conn.want_write

    def test_inbound_frames_land_in_inbox(self, loop_pair):
        loop, ours, theirs = loop_pair
        conn = loop.register("edge", ours)
        sent = [b"a", b"bb" * 1000, b""]
        theirs.sendall(
            b"".join(FRAME_HEADER.pack(len(f)) + f for f in sent)
        )
        deadline = time.monotonic() + 5.0
        while len(conn.inbox) < 3 and time.monotonic() < deadline:
            loop.run_once(0.05)
        assert conn.inbox == sent

    def test_gate_parks_queue_without_syscalls(self, loop_pair):
        """A gated (held/partitioned) connection costs zero syscalls per
        spin: its queue simply stays put until the gate opens."""
        loop, ours, theirs = loop_pair
        conn = loop.register("edge", ours)
        gate_open = [False]
        conn.gate = lambda: gate_open[0]
        loop.enqueue(conn, b"parked")
        for _ in range(3):
            loop.run_once(0.0)
        assert loop.syscalls["sendmsg"] == 0
        assert conn.queued_bytes > 0
        gate_open[0] = True
        loop.run_once(0.0)
        assert _read_frames(theirs, 1) == [b"parked"]

    def test_handler_reply_flushes_same_spin(self, loop_pair):
        """An edge-side handler's replies leave on the spin that read
        the request (end-of-spin flush) — no extra latency turn."""
        loop, ours, theirs = loop_pair
        loop.register("edge", ours, handler=lambda data: [data.upper()])
        theirs.sendall(FRAME_HEADER.pack(5) + b"hello")
        deadline = time.monotonic() + 5.0
        ready = []
        while not ready and time.monotonic() < deadline:
            loop.run_once(0.05)
            ready, _, _ = select_mod.select([theirs], [], [], 0)
        assert _read_frames(theirs, 1) == [b"HELLO"]

    def test_peer_reset_closes_connection(self, loop_pair):
        loop, ours, theirs = loop_pair
        conn = loop.register("edge", ours)
        loop.run_once(0.0)  # admit the registration
        theirs.close()
        deadline = time.monotonic() + 5.0
        while not conn.closed and time.monotonic() < deadline:
            loop.enqueue(conn, b"x" * 4096)
            loop.run_once(0.05)
        assert conn.closed
        assert not conn.out  # queue discarded with the link


# ---------------------------------------------------------------------------
# ReactorTransport: fault + metering parity with InProcessTransport
# ---------------------------------------------------------------------------


FRAME = DeltaFrame(table="items", payload=b"payload-bytes" * 10)


def _in_process():
    transport = InProcessTransport("edge")
    transport.connect(lambda data: [])
    return transport


class TestReactorTransportFaultParity:
    """Every fault must produce the same outcome *and the same metered
    bytes* as the in-process link — that identity is what makes byte
    benches comparable across media."""

    def test_partitioned_fails_unmetered(self, loop_pair):
        loop, ours, _theirs = loop_pair
        reactor = ReactorTransport(
            "edge", loop, ours, faults=FaultInjector(partitioned=True)
        )
        inproc = _in_process()
        inproc.faults.partitioned = True
        for transport in (reactor, inproc):
            outcome = transport.send(FRAME)
            assert outcome.status == "failed"
            assert transport.down_channel.total_bytes == 0

    def test_drop_meters_then_loses(self, loop_pair):
        loop, ours, theirs = loop_pair
        reactor = ReactorTransport(
            "edge", loop, ours, faults=FaultInjector(drop_next=1)
        )
        inproc = _in_process()
        inproc.faults.drop_next = 1
        outcomes = [reactor.send(FRAME), inproc.send(FRAME)]
        assert all(o.status == "dropped" for o in outcomes)
        assert (
            reactor.down_channel.total_bytes
            == inproc.down_channel.total_bytes
            == len(frame_to_bytes(FRAME))
        )
        loop.run_once(0.0)
        ready, _, _ = select_mod.select([theirs], [], [], 0.2)
        assert not ready, "a dropped frame must never reach the wire"

    def test_hold_queues_metered_then_drains(self, loop_pair):
        loop, ours, theirs = loop_pair
        faults = FaultInjector(hold=True)
        reactor = ReactorTransport("edge", loop, ours, faults=faults)
        inproc = _in_process()
        inproc.faults.hold = True
        assert reactor.send(FRAME).status == inproc.send(FRAME).status == "queued"
        assert (
            reactor.down_channel.total_bytes == inproc.down_channel.total_bytes
        )
        loop.run_once(0.0)
        assert reactor._conn.queued_bytes > 0  # parked, not lost
        # A synchronous request cannot wait out a held link — identical
        # error contract on both media.
        for transport in (reactor, inproc):
            with pytest.raises(TransportError, match="holding frames"):
                transport.request(FRAME)
        faults.clear()
        loop.run_once(0.0)
        wire = _read_frames(theirs, 2)  # the held delta + the request
        assert wire[0] == frame_to_bytes(FRAME)

    def test_send_never_syscalls(self, loop_pair):
        """The enqueue-only contract: a hundred sends, zero syscalls."""
        loop, ours, _theirs = loop_pair
        reactor = ReactorTransport("edge", loop, ours)
        for _ in range(100):
            assert reactor.send(FRAME).status == "queued"
        assert loop.syscalls["sendmsg"] == 0
        assert reactor.queued_frames == 100


# ---------------------------------------------------------------------------
# Reactor deployments: EdgeHost fleets over real loopback TCP
# ---------------------------------------------------------------------------


DB = "reactordb"


def make_central(rows=60, **kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=71, **kwargs)
    schema, data = generate_table(
        TableSpec(name="items", rows=rows, columns=4, seed=5)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


def _tcp_fleet(io_mode, n_edges, **central_kwargs):
    central = make_central(**central_kwargs)
    deploy = Deployment(central, io_mode=io_mode)
    host_addr, port = deploy.address
    host = EdgeHost(host_addr, port)
    names = [f"edge-{i}" for i in range(n_edges)]
    host.launch_fleet(names)
    for name in names:
        deploy.wait_for_edge(name)
    return central, deploy, host, names


class TestReactorDeployment:
    @pytest.mark.parametrize("io_mode", ["reactor", "threaded"])
    def test_end_to_end_replication_and_queries(self, io_mode):
        """The same EdgeHost fleet works against both central I/O
        paths: replicate, settle to cursor parity, answer verified
        queries — the threaded fallback stays a drop-in."""
        central, deploy, host, names = _tcp_fleet(io_mode, 4)
        try:
            client = central.make_client()
            for key in range(9001, 9006):
                central.insert("items", (key, "a", "b", "c"))
            deploy.sync()
            for name in names:
                assert central.staleness(name, "items") == 0
                resp = deploy.range_query(name, "items", low=9001, high=9005)
                assert len(resp.result.rows) == 5
                assert client.verify(resp).ok
        finally:
            host.close()
            deploy.shutdown()

    def test_held_edge_parks_queue_and_never_delays_healthy_edges(self):
        """Satellite regression (ISSUE: backpressure): a slow /
        partitioned edge under the event loop parks its queue; healthy
        edges' delivery is never delayed beyond one loop iteration.
        Timing-asserted: a blocking path would eat the held peer's
        drain timeout (5 s) or the socket timeout (10 s) per round."""
        central, deploy, host, names = _tcp_fleet("reactor", 2)
        try:
            held = deploy.edges["edge-0"].transport
            assert isinstance(held, ReactorTransport)
            held.faults.hold = True

            start = time.perf_counter()
            for key in range(9001, 9006):
                central.insert("items", (key, "a", "b", "c"))
            deploy.sync()
            elapsed = time.perf_counter() - start
            assert elapsed < 2.0, (
                f"healthy edge waited {elapsed:.1f}s behind a held peer"
            )
            # The healthy edge is current; the held edge is stale with
            # its frames parked in the connection queue, not lost.
            assert central.staleness("edge-1", "items") == 0
            assert central.staleness("edge-0", "items") > 0
            assert held._conn.queued_bytes > 0
            assert held.connected  # held is weather, not death

            # Clearing the fault drains the parked queue and heals.
            held.faults.clear()
            deploy.sync()
            assert central.staleness("edge-0", "items") == 0
            client = central.make_client()
            resp = deploy.range_query("edge-0", "items", low=9001, high=9005)
            assert len(resp.result.rows) == 5
            assert client.verify(resp).ok
        finally:
            host.close()
            deploy.shutdown()

    def test_delta_batches_coalesce_into_few_syscalls(self):
        """The tentpole's acceptance shape at test scale: an 8-edge
        fleet absorbing 8 eager inserts settles with far fewer
        ``sendmsg`` calls than the 64 blocking ``sendall``\\ s the
        threaded path would issue — queued frames ride one vectored
        write per edge — and without busy polling (bounded selects)."""
        central, deploy, host, names = _tcp_fleet("reactor", 8)
        try:
            before = dict(deploy.reactor.syscalls)
            for key in range(9001, 9009):
                central.insert("items", (key, "a", "b", "c"))
            deploy.sync()
            sent = deploy.reactor.syscalls["sendmsg"] - before["sendmsg"]
            selects = deploy.reactor.syscalls["select"] - before["select"]
            frames = 8 * len(names)  # deltas actually shipped
            assert sent < frames / 2, (
                f"{sent} sendmsg for {frames} frames — coalescing broken"
            )
            assert sent <= 2 * len(names) + 8
            assert selects <= 80, f"{selects} selects for one sync"
            for name in names:
                assert central.staleness(name, "items") == 0
        finally:
            host.close()
            deploy.shutdown()

    def test_delta_and_snapshot_bytes_identical_across_media(self):
        """Exact byte parity (ISSUE acceptance): the same workload
        ships byte-identical snapshot and delta traffic whether edges
        are in-process objects, reactor TCP links, or threaded TCP
        links — same frames on the wire, only the syscall schedule
        differs."""

        def run_tcp(io_mode):
            central, deploy, host, names = _tcp_fleet(io_mode, 2)
            try:
                for key in range(9001, 9006):
                    central.insert("items", (key, "a", "b", "c"))
                deploy.sync()
                return {
                    name: deploy.edges[name].transport.down_channel
                    .bytes_by_kind()
                    for name in names
                }
            finally:
                host.close()
                deploy.shutdown()

        def run_in_process():
            central = make_central()
            for i in range(2):
                central.spawn_edge_server(f"edge-{i}")
            for key in range(9001, 9006):
                central.insert("items", (key, "a", "b", "c"))
            central.fanout.drain(wait=True)
            return {
                f"edge-{i}": central.fanout.peer(f"edge-{i}")
                .transport.down_channel.bytes_by_kind()
                for i in range(2)
            }

        in_process = run_in_process()
        reactor = run_tcp("reactor")
        threaded = run_tcp("threaded")
        for name in in_process:
            for kind in ("snapshot", "delta"):
                assert (
                    in_process[name].get(kind, 0)
                    == reactor[name].get(kind, 0)
                    == threaded[name].get(kind, 0)
                ), f"{kind} bytes diverge across media for {name}"
            assert in_process[name].get("delta", 0) > 0
