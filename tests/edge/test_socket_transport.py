"""The frame codec over real bytes (DESIGN.md section 8).

Everything here runs in one process (socketpairs and threads — no
subprocesses), so it belongs to the tier-1 suite: the framing layer's
partial-read / short-write / torn-frame behaviour, the TcpTransport's
pipelined send/flush/request surface, and a full handshake cycle with
the edge served from a thread.  The multi-*process* deployment tests
live in ``test_deploy.py`` behind the ``socket`` marker.
"""

import socket
import threading
import time

import pytest

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment
from repro.edge.serve import run_edge
from repro.edge.socket_transport import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    TcpTransport,
    connect_with_retry,
    recv_frame,
    send_frame,
)
from repro.edge.transport import (
    AckFrame,
    DeltaFrame,
    QueryResponseFrame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import TransportError
from repro.workloads.generator import TableSpec, generate_table

DB = "socketdb"


def make_central(rows=80, **kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=41, **kwargs)
    schema, data = generate_table(
        TableSpec(name="t", rows=rows, columns=4, seed=9)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    yield left, right
    for sock in (left, right):
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Framing over real bytes
# ---------------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = bytes(range(256)) * 41
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_empty_frame(self, pair):
        left, right = pair
        send_frame(left, b"")
        assert recv_frame(right) == b""

    def test_many_frames_back_to_back(self, pair):
        left, right = pair
        frames = [bytes([i]) * (i * 37 + 1) for i in range(20)]
        for data in frames:
            send_frame(left, data)
        for data in frames:
            assert recv_frame(right) == data

    def test_partial_reads_reassemble(self, pair):
        """The receiver sees the frame in many TCP segments (here:
        byte-by-byte) and must reassemble it exactly."""
        left, right = pair
        payload = b"fragmented-delivery" * 11
        wire = FRAME_HEADER.pack(len(payload)) + payload

        def dribble():
            for i in range(len(wire)):
                left.sendall(wire[i : i + 1])
                if i % 64 == 0:
                    time.sleep(0.001)

        thread = threading.Thread(target=dribble)
        thread.start()
        try:
            assert recv_frame(right) == payload
        finally:
            thread.join()

    def test_clean_eof_between_frames_is_none(self, pair):
        left, right = pair
        send_frame(left, b"last-frame")
        left.close()
        assert recv_frame(right) == b"last-frame"
        assert recv_frame(right) is None

    def test_mid_frame_disconnect_raises(self, pair):
        """EOF after the header but before the full body is a torn
        frame, never silently-truncated data."""
        left, right = pair
        payload = b"x" * 1000
        left.sendall(FRAME_HEADER.pack(len(payload)) + payload[:137])
        left.close()
        with pytest.raises(TransportError, match="mid-frame"):
            recv_frame(right)

    def test_eof_inside_header_raises(self, pair):
        left, right = pair
        left.sendall(FRAME_HEADER.pack(99)[:2])
        left.close()
        with pytest.raises(TransportError, match="mid-frame"):
            recv_frame(right)

    def test_implausible_length_header_rejected(self, pair):
        left, right = pair
        left.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError, match="exceeds limit"):
            recv_frame(right)

    def test_oversized_send_rejected_locally(self, pair):
        left, _right = pair

        class Huge(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(TransportError, match="exceeds limit"):
            send_frame(left, Huge())

    def test_connect_with_retry_gives_up(self):
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))  # bound but NOT listening
        port = sink.getsockname()[1]
        try:
            with pytest.raises(TransportError, match="attempts"):
                connect_with_retry("127.0.0.1", port, attempts=2, delay=0.01)
        finally:
            sink.close()


# ---------------------------------------------------------------------------
# TcpTransport: pipelined sends, flush, request, failure mapping
# ---------------------------------------------------------------------------


def _echo_acks(sock, count, *, lsn_of=lambda i: i + 1):
    """Peer stub: reply to ``count`` frames with positive acks."""
    for i in range(count):
        data = recv_frame(sock)
        if data is None:
            return
        frame = frame_from_bytes(data)
        ack = AckFrame(edge="stub", table=frame.table, ok=True,
                       lsn=lsn_of(i), epoch=0)
        send_frame(sock, frame_to_bytes(ack))


class TestTcpTransport:
    def test_pipelined_sends_then_flush(self, pair):
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        peer = threading.Thread(target=_echo_acks, args=(right, 3))
        peer.start()
        try:
            for i in range(3):
                outcome = transport.send(DeltaFrame("t", b"d%d" % i))
                assert outcome.status == "queued"
            assert transport.queued_frames == 3
            replies = transport.flush(wait=True)
        finally:
            peer.join()
        assert [r.lsn for r in replies] == [1, 2, 3]
        assert transport.queued_frames == 0
        # metering: both directions recorded, identically to in-process
        assert transport.down_channel.bytes_by_kind().keys() == {"delta"}
        assert transport.up_channel.bytes_by_kind().keys() == {"ack"}

    def test_send_after_peer_close_maps_to_failed(self, pair):
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        right.close()
        # The first send may land in the socket buffer before the reset
        # is visible; the link must report failed within a few sends and
        # never raise.
        for _ in range(20):
            outcome = transport.send(DeltaFrame("t", b"x" * 4096))
            if outcome.status == "failed":
                break
            time.sleep(0.01)
        else:
            pytest.fail("send never observed the dead peer")
        assert not transport.connected

    def test_flush_on_dead_link_forgets_inflight(self, pair):
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        assert transport.send(DeltaFrame("t", b"d")).status == "queued"
        right.close()  # peer dies with the ack outstanding
        assert transport.flush(wait=True) == []
        assert transport.queued_frames == 0
        assert not transport.connected
        assert transport.send(DeltaFrame("t", b"d2")).status == "failed"

    def test_nonblocking_flush_leaves_pending_acks(self, pair):
        """The write-path drain (``wait=False``) must return instantly
        when the peer has not answered yet — a slow edge's frames keep
        occupying the window instead of stalling the caller."""
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        assert transport.send(DeltaFrame("t", b"d")).status == "queued"
        start = time.perf_counter()
        assert transport.flush() == []  # peer silent: nothing to collect
        assert time.perf_counter() - start < 0.5
        assert transport.queued_frames == 1
        assert transport.connected
        # The ack is picked up once the peer answers.
        _echo_acks(right, 1)
        replies = transport.flush(wait=True)
        assert [r.lsn for r in replies] == [1]
        assert transport.queued_frames == 0

    def test_partial_reply_does_not_block_or_tear_the_link(self, pair):
        """A reply that has only half-arrived must neither block the
        non-blocking drain nor be mistaken for a fault — the fragment
        waits in the receive buffer until the rest shows up."""
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        assert transport.send(DeltaFrame("t", b"d")).status == "queued"
        data = recv_frame(right)
        frame = frame_from_bytes(data)
        ack = frame_to_bytes(
            AckFrame(edge="stub", table=frame.table, ok=True, lsn=1, epoch=0)
        )
        wire = FRAME_HEADER.pack(len(ack)) + ack
        right.sendall(wire[:7])  # header + a sliver of the body
        time.sleep(0.05)
        start = time.perf_counter()
        assert transport.flush() == []  # non-blocking, fragment buffered
        assert time.perf_counter() - start < 0.5
        assert transport.connected
        assert transport.queued_frames == 1
        right.sendall(wire[7:])  # the rest arrives
        replies = transport.flush(wait=True)
        assert [r.lsn for r in replies] == [1]
        assert transport.queued_frames == 0

    def test_cumulative_ack_settles_all_pending(self, pair):
        """A coalescing peer answers many sends with one cumulative
        ack.  Per-frame pending accounting would drift upward forever
        and make ``flush(wait=True)`` block (then tear down the healthy
        link) waiting for replies that are never coming — the
        cumulative ack must zero the pending count."""
        from repro.edge.transport import CursorAckFrame

        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)

        def coalescing_peer():
            for _ in range(3):
                recv_frame(right)
            ack = CursorAckFrame(edge="stub", cursors=(("t", 3, 0),))
            send_frame(right, frame_to_bytes(ack))

        thread = threading.Thread(target=coalescing_peer)
        thread.start()
        try:
            for i in range(3):
                transport.send(DeltaFrame("t", b"d%d" % i))
            start = time.perf_counter()
            replies = transport.flush(wait=True)
            elapsed = time.perf_counter() - start
        finally:
            thread.join()
        assert elapsed < 3.0, f"flush blocked {elapsed:.1f}s on a settled link"
        assert [type(r).__name__ for r in replies] == ["CursorAckFrame"]
        assert transport.queued_frames == 0
        assert transport.connected

    def test_request_round_trip_and_stray_replies(self, pair):
        """A query issued while replication acks are outstanding gets
        *its* reply; the drained acks surface on the next flush."""
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)

        def peer():
            _echo_acks(right, 2)
            data = recv_frame(right)  # the query
            frame = frame_from_bytes(data)
            assert frame.kind == "range"
            send_frame(
                right,
                frame_to_bytes(QueryResponseFrame(edge="stub", payload=b"R")),
            )

        thread = threading.Thread(target=peer)
        thread.start()
        try:
            transport.send(DeltaFrame("t", b"d1"))
            transport.send(DeltaFrame("t", b"d2"))
            from repro.edge.transport import QueryRequestFrame

            reply = transport.request(
                QueryRequestFrame(kind="range", table="t", low=1, high=2)
            )
        finally:
            thread.join()
        assert isinstance(reply, QueryResponseFrame)
        assert reply.payload == b"R"
        strays = transport.flush()
        assert [r.lsn for r in strays] == [1, 2]

    def test_request_on_dead_link_raises(self, pair):
        left, right = pair
        transport = TcpTransport("stub", left, timeout=5)
        right.close()
        transport.close()
        from repro.edge.transport import QueryRequestFrame

        with pytest.raises(TransportError):
            transport.request(QueryRequestFrame(kind="range", table="t"))


# ---------------------------------------------------------------------------
# Full handshake cycle with the edge served from a thread
# ---------------------------------------------------------------------------


class TestHelloCursorSanitizing:
    def test_lying_cursor_ahead_of_log_cannot_starve_the_edge(self):
        """A hello claiming an LSN beyond the log head (compromised
        edge, or an edge that outlived a central restart) is clamped —
        replication must keep flowing, never silently stop."""
        from repro.edge.edge_server import EdgeServer
        from repro.edge.transport import InProcessTransport

        central = make_central()
        edge = EdgeServer(name="liar", config=central.edge_config())
        link = InProcessTransport("liar")
        edge.attach_transport(link)
        central.attach_remote_edge(
            "liar",
            link,
            cursors=(
                ("t", 10**6, central.keyring.current_epoch),  # absurd LSN
                ("no_such_table", 3, 0),                      # unknown replica
            ),
        )
        peer = central.fanout.peer("liar")
        assert peer.acked_lsns["t"] <= central.replicator.log_for("t").last_lsn
        assert "no_such_table" not in peer.acked_lsns
        assert central.staleness("liar", "t") >= 0
        # The lie surfaces as a diverged nack on the next delta and the
        # ordinary snapshot heal takes over.
        central.insert("t", (9009, "a", "b", "c"))
        central.propagate("t")
        assert central.staleness("liar", "t") == 0
        assert len(edge.replica("t").tree) == len(central.tables["t"])


class TestThreadedDeployment:
    """The deployment handshake and sync protocol over real TCP, with
    the edge's serve loop in a thread — same wire traffic as the
    multi-process tests, fast enough for tier-1."""

    def test_bootstrap_sync_query_and_verify(self):
        central = make_central()
        client = central.make_client()
        with Deployment(central, io_timeout=5) as deploy:
            host, port = deploy.address
            thread = threading.Thread(
                target=run_edge,
                args=("thread-edge", host, port),
                kwargs={"max_reconnects": 0, "retry_attempts": 10,
                        "retry_delay": 0.05, "io_timeout": 5},
            )
            thread.start()
            try:
                deploy.wait_for_edge("thread-edge", timeout=15)
                assert central.staleness("thread-edge", "t") == 0
                central.insert("t", (9001, "a", "b", "c"))
                deploy.sync()
                assert central.staleness("thread-edge", "t") == 0
                resp = deploy.range_query("thread-edge", "t", low=9001, high=9001)
                assert len(resp.result.rows) == 1
                assert client.verify(resp).ok
                # Replication and query traffic both metered on the link.
                kinds = deploy.edges["thread-edge"].transport.down_channel.bytes_by_kind()
                assert "snapshot" in kinds and "delta" in kinds and "query" in kinds
            finally:
                deploy.shutdown()
                thread.join(timeout=10)
        assert not thread.is_alive()

    def test_reconnect_resumes_from_reported_cursors(self):
        """A transient link drop (edge process survives) must resume
        via deltas — the hello carries the cursors — not snapshots."""
        central = make_central()
        with Deployment(central, io_timeout=5) as deploy:
            host, port = deploy.address
            thread = threading.Thread(
                target=run_edge,
                args=("r-edge", host, port),
                kwargs={"max_reconnects": 1, "retry_attempts": 40,
                        "retry_delay": 0.05, "io_timeout": 5},
            )
            thread.start()
            try:
                deploy.wait_for_edge("r-edge", timeout=15)
                old = deploy.edges["r-edge"].transport
                deploy.edges["r-edge"].registered.clear()
                old.close()  # transient network drop
                deploy.wait_for_edge("r-edge", timeout=15)
                fresh = deploy.edges["r-edge"].transport
                assert fresh is not old
                central.insert("t", (9002, "d", "e", "f"))
                deploy.sync()
                assert central.staleness("r-edge", "t") == 0
                kinds = fresh.down_channel.bytes_by_kind()
                assert "snapshot" not in kinds, "resume must not re-snapshot"
                assert kinds.get("delta", 0) > 0
            finally:
                deploy.shutdown()
                thread.join(timeout=10)

    def test_edge_survives_idle_link(self):
        """No traffic for longer than the receive timeout is *idle*,
        not a fault: the serve loop must keep waiting, not crash."""
        central = make_central()
        client = central.make_client()
        with Deployment(central, io_timeout=5) as deploy:
            host, port = deploy.address
            thread = threading.Thread(
                target=run_edge,
                args=("idle-edge", host, port),
                kwargs={"max_reconnects": 0, "retry_attempts": 10,
                        "retry_delay": 0.05, "io_timeout": 0.3},
            )
            thread.start()
            try:
                deploy.wait_for_edge("idle-edge", timeout=15)
                time.sleep(1.0)  # > 3x the edge's receive timeout
                assert thread.is_alive(), "edge died on an idle link"
                resp = deploy.range_query("idle-edge", "t", low=1, high=50)
                assert client.verify(resp).ok
            finally:
                deploy.shutdown()
                thread.join(timeout=10)

    def test_bad_query_returns_error_reply_and_edge_survives(self):
        """A query the edge cannot answer must come back as an error
        response frame — never kill the serve loop or hang the caller."""
        central = make_central()
        client = central.make_client()
        with Deployment(central, io_timeout=5) as deploy:
            host, port = deploy.address
            thread = threading.Thread(
                target=run_edge,
                args=("q-edge", host, port),
                kwargs={"max_reconnects": 0, "retry_attempts": 10,
                        "retry_delay": 0.05, "io_timeout": 5},
            )
            thread.start()
            try:
                deploy.wait_for_edge("q-edge", timeout=15)
                with pytest.raises(TransportError, match="rejected query"):
                    deploy.secondary_range_query(
                        "q-edge", "t", "no_such_attr", low=0, high=1
                    )
                assert thread.is_alive(), "edge died on a bad query"
                resp = deploy.range_query("q-edge", "t", low=1, high=50)
                assert client.verify(resp).ok
            finally:
                deploy.shutdown()
                thread.join(timeout=10)

    def test_dead_edge_does_not_block_writes(self):
        central = make_central()
        with Deployment(central, io_timeout=5) as deploy:
            host, port = deploy.address
            thread = threading.Thread(
                target=run_edge,
                args=("d-edge", host, port),
                kwargs={"max_reconnects": 0, "retry_attempts": 10,
                        "retry_delay": 0.05, "io_timeout": 5},
            )
            thread.start()
            try:
                deploy.wait_for_edge("d-edge", timeout=15)
                deploy.edges["d-edge"].transport.close()
                thread.join(timeout=10)
                # Writes proceed against a fleet whose only edge is gone.
                for key in range(9100, 9110):
                    central.insert("t", (key, "a", "b", "c"))
                assert central.staleness("d-edge", "t") > 0
            finally:
                deploy.shutdown()
                thread.join(timeout=10)
