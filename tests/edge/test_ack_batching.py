"""Batched cumulative acks, piggybacked cursors, and adaptive windows
(DESIGN.md section 10).

The protocol battery for the cursor-safe ack coalescing tentpole:

* edges defer ok-acks to a count/byte threshold and answer with one
  cumulative ``CursorAckFrame`` that settles the whole window;
* heal boundaries (snapshots) and probes ack immediately, and *nacks*
  are never coalesced — tamper/gap escalation survives batching;
* cursor application on the central side is **monotonic**: shuffled,
  duplicated, delayed acks can never regress ``acked_lsns`` (the
  regression the hypothesis property below hunts);
* per-edge flow-control windows adapt (AIMD) to observed ack latency —
  growing on fast links, shrinking on slow ones, halving on faults.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.central import CentralServer, ReplicationMode
from repro.edge.deploy import Deployment
from repro.edge.fanout import AdaptiveWindow
from repro.edge.serve import run_edge
from repro.edge.transport import (
    AckFrame,
    CursorAckFrame,
    CursorProbeFrame,
    InProcessTransport,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
)
from repro.workloads.generator import TableSpec, generate_table

DB = "ackbatchdb"


def make_central(rows=80, **kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=71, **kwargs)
    schema, data = generate_table(
        TableSpec(name="t", rows=rows, columns=4, seed=5)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


def ack_frames(transport) -> int:
    """Ack frames the edge sent on this link (cursor acks + nacks)."""
    return sum(
        1 for t in transport.up_channel.transfers if t.kind == "ack"
    )


def probe_frames(transport) -> int:
    """Cursor probes the central sent on this link."""
    return sum(
        1 for t in transport.down_channel.transfers if t.kind == "control"
    )


def delta_frames(transport) -> int:
    return sum(
        1 for t in transport.down_channel.transfers if t.kind == "delta"
    )


# ---------------------------------------------------------------------------
# Coalescing cadence (edge side)
# ---------------------------------------------------------------------------


class TestAckCoalescing:
    def test_per_frame_cadence_is_the_default(self):
        """``ack_every=1`` acknowledges every delta immediately — the
        pre-batching behaviour in-process simulations rely on."""
        server = make_central()
        edge = server.spawn_edge_server("e1")
        link = server.fanout.peer("e1").transport
        before = ack_frames(link)
        for key in range(9001, 9006):
            server.insert("t", (key, "a", "b", "c"))
        assert ack_frames(link) - before == 5
        assert server.staleness(edge, "t") == 0
        assert probe_frames(link) == 0  # synchronous acks: never probed

    def test_count_threshold_coalesces_acks(self):
        """16 eager delta frames under ``ack_every=8`` produce exactly
        two cumulative acks — an 8x reduction at identical delta
        traffic."""
        server = make_central(ack_every=8)
        edge = server.spawn_edge_server("e1")
        link = server.fanout.peer("e1").transport
        before_acks = ack_frames(link)
        before_deltas = delta_frames(link)
        for key in range(9001, 9017):
            server.insert("t", (key, "a", "b", "c"))
        assert delta_frames(link) - before_deltas == 16
        assert ack_frames(link) - before_acks == 2
        # The 16th frame tripped the threshold: fully settled.
        assert server.staleness(edge, "t") == 0
        assert server.fanout.peer("e1").inflight == 0

    def test_wait_drain_probes_out_the_tail(self):
        """Frames below the threshold stay unacknowledged until a
        settle point solicits a probe — one tiny control frame settles
        the whole tail, and the ack-fed staleness view is exact
        again (no accuracy loss from batching)."""
        server = make_central(ack_every=8)
        edge = server.spawn_edge_server("e1")
        link = server.fanout.peer("e1").transport
        for key in range(9001, 9004):  # 3 frames: below the threshold
            server.insert("t", (key, "a", "b", "c"))
        peer = server.fanout.peer("e1")
        assert server.staleness(edge, "t") == 3  # acks deferred
        assert peer.inflight == 3
        assert ack_frames(link) == 1  # only the bootstrap heal ack
        server.fanout.drain("e1", wait=True)
        assert server.staleness(edge, "t") == 0
        assert peer.inflight == 0
        assert probe_frames(link) == 1
        assert ack_frames(link) == 2  # + exactly one cumulative ack

    def test_byte_threshold_forces_early_ack(self):
        """A byte budget of 1 acknowledges every frame whatever the
        frame threshold says."""
        server = make_central(ack_every=1000, ack_bytes=1)
        edge = server.spawn_edge_server("e1")
        link = server.fanout.peer("e1").transport
        before = ack_frames(link)
        for key in range(9001, 9005):
            server.insert("t", (key, "a", "b", "c"))
        assert ack_frames(link) - before == 4
        assert server.staleness(edge, "t") == 0

    def test_snapshot_is_a_heal_boundary(self):
        """A snapshot install acks immediately even under deep
        coalescing — the sender is waiting on the O(tree) transfer."""
        server = make_central(ack_every=1000, max_log_entries=2)
        edge = server.spawn_edge_server("e1")
        link = server.fanout.peer("e1").transport
        link.faults.partitioned = True
        for key in range(9001, 9009):  # far past log retention
            server.insert("t", (key, "a", "b", "c"))
        link.faults.clear()
        server.propagate("t")  # heals via snapshot
        assert server.staleness(edge, "t") == 0
        kinds = [t.kind for t in edge.replication_channel.transfers]
        assert kinds[-1] == "snapshot"
        edge.replica("t").audit()

    def test_nacks_are_never_coalesced(self):
        """Cumulative acks cannot mask divergence: a tampered replica
        nacks the next delta *immediately* (threshold ignored) and the
        snapshot heal escalation runs in the same pump."""
        server = make_central(ack_every=1000)
        edge = server.spawn_edge_server("bad")
        client = server.make_client()
        edge.replica("t").tree.delete(4)  # at-rest structural tampering
        server.delete("t", 4)
        assert edge.replication_channel.transfers[-1].kind == "snapshot"
        assert server.staleness(edge, "t") == 0
        resp = edge.range_query("t", low=0, high=50)
        assert client.verify(resp).ok

    def test_wait_drain_leaves_a_held_link_outstanding(self):
        """A held-but-alive link cannot answer a probe yet: the settle
        loop must give up without forgetting the frames (they are still
        queued for delivery), and the next settle after the fault
        clears converges."""
        server = make_central(ack_every=8)
        edge = server.spawn_edge_server("slow")
        peer = server.fanout.peer("slow")
        link = peer.transport
        link.faults.hold = True
        for key in range(9001, 9004):
            server.insert("t", (key, "a", "b", "c"))
        assert peer.inflight == 3
        server.fanout.drain("slow", wait=True)  # probe queues, no reply
        assert peer.inflight == 3  # optimism kept: frames are in the link
        assert peer.probe_inflight
        link.faults.clear()
        server.fanout.drain("slow", wait=True)
        assert peer.inflight == 0
        assert server.staleness(edge, "t") == 0

    def test_dropped_probe_shrinks_window_and_keeps_optimism(self):
        server = make_central(ack_every=8)
        server.spawn_edge_server("lossy")
        peer = server.fanout.peer("lossy")
        link = peer.transport
        link.faults.hold = True
        for key in range(9001, 9004):
            server.insert("t", (key, "a", "b", "c"))
        link.faults.clear()
        link.faults.drop_next = 1  # the probe itself is lost
        size = peer.window.size
        server.fanout.drain("lossy", wait=True)
        assert peer.window.size < size  # fault shrank the window
        assert peer.inflight == 3  # frames still awaiting settle
        server.fanout.drain("lossy", wait=True)  # next probe lands
        assert peer.inflight == 0
        assert server.staleness("lossy", "t") == 0

    def test_probe_frame_answers_with_cumulative_cursors(self):
        server = make_central(ack_every=1000)
        edge = server.spawn_edge_server("e1")
        for key in range(9001, 9004):
            server.insert("t", (key, "a", "b", "c"))
        (reply,) = edge.handle_frame(frame_to_bytes(CursorProbeFrame()))
        ack = frame_from_bytes(reply)
        assert isinstance(ack, CursorAckFrame)
        assert dict((t, (lsn, e)) for t, lsn, e in ack.cursors)["t"][0] == \
            edge.replica_lsns["t"]


# ---------------------------------------------------------------------------
# Monotonic cursor application (the ack/cursor correctness sweep)
# ---------------------------------------------------------------------------


def bare_peer():
    """A central with two replicated tables ("t" and "u", log heads
    past LSN 9, key epoch 2) and one attached peer whose link swallows
    every frame — acks are then injected by hand."""
    server = CentralServer(db_name=DB, rsa_bits=512, seed=72)
    for name in ("t", "u"):
        schema, data = generate_table(
            TableSpec(name=name, rows=10, columns=3, seed=6)
        )
        server.create_table(schema, data, fanout_override=6)
        for key in range(9001, 9011):
            server.insert(name, (key, "a", "b"))
    server.rotate_key(seed=73)
    server.rotate_key(seed=74)
    link = InProcessTransport("x")
    link.connect(lambda data: [])
    peer = server.fanout.attach("x", link)
    return server.fanout, peer


class TestMonotonicCursors:
    def test_outranked_gap_nack_cannot_regress_the_cursor(self):
        """Regression (pre-batching ``_apply_ack`` assigned the gap
        cursor unconditionally): a gap nack behind the acknowledged
        cursor must never roll ``acked_lsns`` back.  It must not be
        silently ignored either — on an ordered link it means the
        replica regressed, so it escalates to a snapshot heal."""
        fanout, peer = bare_peer()
        fanout._process_replies(
            peer, [CursorAckFrame(edge="x", cursors=(("t", 5, 0),))]
        )
        assert peer.acked_lsns["t"] == 5
        stale_nack = AckFrame(
            edge="x", table="t", ok=False, lsn=2, epoch=0, reason="gap"
        )
        verdict = fanout._process_replies(peer, [stale_nack])
        assert peer.acked_lsns["t"] == 5  # never regressed
        assert verdict == "snapshot"  # divergence: replaced, not retried
        assert "t" in peer.needs_snapshot

    def test_regressed_replica_heals_instead_of_livelocking(self):
        """End to end: an edge whose cursor rolled back underneath the
        central view (state loss / at-rest tampering) keeps gap-nacking
        from *behind* the acknowledged cursor.  The engine must treat
        that as divergence and snapshot-heal — not ignore the outranked
        nack and resend the same gapping delta forever."""
        server = make_central()
        edge = server.spawn_edge_server("rollback")
        client = server.make_client()
        for key in range(9001, 9006):
            server.insert("t", (key, "a", "b", "c"))
        assert server.staleness(edge, "t") == 0
        edge.replica_lsns["t"] -= 3  # the replica regresses
        server.insert("t", (9006, "a", "b", "c"))
        server.propagate("t")
        assert server.staleness(edge, "t") == 0
        assert edge.replication_channel.transfers[-1].kind == "snapshot"
        resp = edge.range_query("t", low=9001, high=9006)
        assert len(resp.result.rows) == 6
        assert client.verify(resp).ok
        edge.replica("t").audit()

    def test_delayed_old_epoch_ack_cannot_regress_the_epoch(self):
        """Regression (epochs were assigned unconditionally): an
        equal-LSN ack from before a rotation must not roll the epoch
        back — that would fake a cross-epoch mismatch and trigger a
        spurious O(tree) snapshot heal."""
        fanout, peer = bare_peer()
        fanout._process_replies(
            peer,
            [AckFrame(edge="x", table="t", ok=True, lsn=7, epoch=2)],
        )
        fanout._process_replies(
            peer,
            [AckFrame(edge="x", table="t", ok=True, lsn=7, epoch=1)],
        )
        assert peer.acked_epochs["t"] == 2

    def test_lying_cursor_ahead_of_log_cannot_suppress_replication(self):
        """The hello-path sanitization applies to every cursor source:
        a cumulative ack (or piggybacked response cursor) claiming an
        LSN beyond the log head is clamped, so the table keeps
        receiving frames instead of being skipped forever — and a
        fabricated table name is dropped instead of growing central
        state."""
        fanout, peer = bare_peer()
        fanout._process_replies(
            peer,
            [CursorAckFrame(
                edge="x",
                cursors=(("t", 10**9, 10**6), ("no_such_table", 7, 0)),
            )],
        )
        head = fanout.central.replicator.log_for("t").last_lsn
        assert peer.acked_lsns["t"] <= head
        assert peer.sent_lsns["t"] <= head
        assert peer.acked_epochs["t"] <= fanout.central.keyring.current_epoch
        assert "no_such_table" not in peer.acked_lsns
        # Same rules via the piggyback path.
        fanout.observe_response_cursors(
            "x", (("u", 10**9, 0), ("fake", 1, 0))
        )
        assert peer.acked_lsns["u"] <= \
            fanout.central.replicator.log_for("u").last_lsn
        assert "fake" not in peer.acked_lsns
        # A nack for a fabricated table must not grow needs_snapshot.
        fanout._process_replies(
            peer,
            [AckFrame(edge="x", table="ghost", ok=False, lsn=0, epoch=0,
                      reason="tamper")],
        )
        assert "ghost" not in peer.needs_snapshot

    def test_duplicate_and_stale_acks_are_idempotent(self):
        fanout, peer = bare_peer()
        frames = [
            CursorAckFrame(edge="x", cursors=(("t", 3, 0),)),
            CursorAckFrame(edge="x", cursors=(("t", 3, 0),)),  # duplicate
            AckFrame(edge="x", table="t", ok=False, lsn=1, epoch=0,
                     reason="stale"),  # ancient duplicate-delivery nack
        ]
        for frame in frames:
            fanout._process_replies(peer, [frame])
            assert peer.acked_lsns["t"] == 3

    @settings(max_examples=60, deadline=None)
    @given(
        order=st.lists(
            st.sampled_from(range(6)), min_size=1, max_size=24
        )
    )
    def test_any_ack_ordering_is_monotonic(self, order):
        """Property: under *any* interleaving of delayed/duplicated
        acks (cumulative acks, ok acks, stale and gap nacks drawn from
        a monotone history), the applied cursor is always the max seen
        so far and never regresses."""
        # The edge's true history: cursors only ever advance, epochs
        # bump at a rotation barrier.
        history = [
            CursorAckFrame(edge="x", cursors=(("t", 1, 0), ("u", 2, 0))),
            AckFrame(edge="x", table="t", ok=True, lsn=3, epoch=0),
            AckFrame(edge="x", table="t", ok=False, lsn=4, epoch=0,
                     reason="stale"),
            AckFrame(edge="x", table="u", ok=False, lsn=5, epoch=0,
                     reason="gap"),
            CursorAckFrame(edge="x", cursors=(("t", 8, 1), ("u", 6, 1))),
            CursorAckFrame(edge="x", cursors=(("t", 9, 1), ("u", 9, 1))),
        ]
        best: dict[str, tuple[int, int]] = {}
        for idx in range(6):
            frame = history[idx]
            entries = (
                frame.cursors
                if isinstance(frame, CursorAckFrame)
                else [(frame.table, frame.lsn, frame.epoch)]
            )
            for table, lsn, epoch in entries:
                if table not in best or (lsn, epoch) > best[table]:
                    best[table] = (lsn, epoch)

        fanout, peer = bare_peer()
        seen: dict[str, tuple[int, int]] = {}
        for idx in order:
            fanout._process_replies(peer, [history[idx]])
            for table, lsn in peer.acked_lsns.items():
                epoch = peer.acked_epochs[table]
                prev = seen.get(table, (0, -1))
                assert (lsn, epoch) >= prev, "cursor regressed"
                seen[table] = (lsn, epoch)
                assert (lsn, epoch) <= best[table], "cursor overshot"
        # Exhaustive delivery reaches exactly the true maxima.
        for idx in range(6):
            fanout._process_replies(peer, [history[idx]])
        for table, (lsn, epoch) in best.items():
            assert peer.acked_lsns[table] == lsn
            assert peer.acked_epochs[table] == epoch


# ---------------------------------------------------------------------------
# Adaptive windows
# ---------------------------------------------------------------------------


class TestAdaptiveWindow:
    def test_fast_acks_grow_to_ceiling(self):
        window = AdaptiveWindow(size=2, floor=1, ceiling=6, target=0.05)
        for _ in range(10):
            window.on_ack(0.001)
        assert window.size == 6

    def test_slow_acks_shrink_to_floor(self):
        window = AdaptiveWindow(size=6, floor=2, ceiling=8, target=0.05)
        for _ in range(10):
            window.on_ack(1.0)
        assert window.size == 2

    def test_fault_halves_instantly(self):
        window = AdaptiveWindow(size=8, floor=1, ceiling=8)
        window.on_fault()
        assert window.size == 4
        window.on_fault()
        window.on_fault()
        window.on_fault()
        assert window.size == 1  # floored, never zero

    def test_ewma_smooths_one_outlier(self):
        window = AdaptiveWindow(size=4, floor=1, ceiling=8, target=0.05)
        for _ in range(6):
            window.on_ack(0.0)
        size = window.size
        window.on_ack(0.08)  # one slow ack against a fast history
        assert window.size >= size  # smoothed away, no panic shrink

    def test_fast_link_converges_larger(self):
        """Integration: with a raised ceiling, an in-process link's
        instant acks grow the window past the initial bound."""
        server = make_central(fanout_window=2, fanout_window_max=8)
        server.spawn_edge_server("e1")
        for key in range(9001, 9011):
            server.insert("t", (key, "a", "b", "c"))
        peer = server.fanout.peer("e1")
        assert peer.window.size == 8
        assert server.staleness("e1", "t") == 0

    def test_slow_held_link_shrinks_window(self):
        """Integration: acks held back by a slow link settle with high
        observed latency and the window backs off below its grown
        size."""
        server = make_central(fanout_window=4, fanout_window_max=8)
        server.fanout.ack_latency_target = 0.02
        server.spawn_edge_server("slow")
        peer = server.fanout.peer("slow")
        link = peer.transport
        link.faults.hold = True
        for key in range(9001, 9005):
            server.insert("t", (key, "a", "b", "c"))
        grown = peer.window.size
        time.sleep(0.1)  # the frames sit in the slow link
        link.faults.clear()
        server.propagate("t")
        assert server.staleness("slow", "t") == 0
        assert peer.window.size < grown
        assert peer.window.size >= peer.window.floor

    def test_solicited_settle_does_not_shrink_a_fast_window(self):
        """A probe-solicited settle measures how long the *central*
        left frames unclaimed (workload pacing, coalescing delay), not
        the link's speed — it must not feed the latency EWMA.  An
        instant in-process link under ``ack_every > window`` with a
        paced workload would otherwise be walked to the floor and
        probed on every single insert."""
        server = make_central(ack_every=8, fanout_window=2)
        server.spawn_edge_server("paced")
        peer = server.fanout.peer("paced")
        for key in (9001, 9002):  # fill the window, acks deferred
            server.insert("t", (key, "a", "b", "c"))
        assert peer.inflight == 2 == peer.window.size
        time.sleep(0.5)  # the workload pauses; frames age unclaimed
        server.insert("t", (9003, "a", "b", "c"))  # blocked -> solicit
        # The solicited settle freed the window without penalizing it.
        assert peer.window.size == 2, (
            f"solicited settle shrank a fast link (2 -> "
            f"{peer.window.size})"
        )
        assert peer.inflight == 1  # the blocked insert went out after all

    def test_dead_link_fault_halves_window_exactly_once(self):
        """One link-death event is one AIMD fault: the failed send
        charges the window and the forget-outstanding cleanup must not
        charge it again (a double fault quarters the pipeline and
        doubles the regrow time after the edge heals)."""
        import socket as socket_mod

        from repro.edge.socket_transport import TcpTransport

        server = make_central(fanout_window=8)
        left, right = socket_mod.socketpair()
        transport = TcpTransport("dead", left, timeout=1)
        lsn = server.replicator.log_for("t").last_lsn
        epoch = server.keyring.current_epoch
        server.attach_remote_edge(
            "dead", transport, cursors=[("t", lsn, epoch)],
            config_epoch=epoch,
        )
        right.close()
        transport.close()  # the link dies with the window configured
        server.insert("t", (9001, "a", "b", "c"))  # one failed-send pump
        peer = server.fanout.peer("dead")
        assert peer.window.size == 4  # halved once, not quartered
        assert peer.inflight == 0

    def test_fixed_window_by_default(self):
        """Without a raised ceiling the window is the classic constant
        — simulations keep exact determinism."""
        server = make_central(fanout_window=3)
        server.spawn_edge_server("e1")
        for key in range(9001, 9011):
            server.insert("t", (key, "a", "b", "c"))
        assert server.fanout.peer("e1").window.size == 3


# ---------------------------------------------------------------------------
# Piggybacked cursors
# ---------------------------------------------------------------------------


class TestPiggybackedCursors:
    def test_query_response_carries_all_replica_cursors(self):
        server = make_central()
        server.create_secondary_index("t", "a1", fanout_override=6)
        edge = server.spawn_edge_server("e1")
        server.insert("t", (9001, "a", "b", "c"))
        link = InProcessTransport("client")
        link.connect(edge.handle_frame)
        outcome = link.send(range_query_frame("t", low=0, high=10))
        (reply,) = outcome.replies
        tables = {t for t, _l, _e in reply.cursors}
        assert tables == {"t", "t__by_a1"}
        cursors = {t: lsn for t, lsn, _e in reply.cursors}
        assert cursors["t"] == edge.replica_lsns["t"]

    def test_router_learns_unqueried_replicas_from_piggyback(self):
        """One routed query on the base table seeds the freshest-policy
        hints for the secondary index replica too."""
        server = make_central()
        server.create_secondary_index("t", "a1", fanout_override=6)
        edge = server.spawn_edge_server("e1")
        server.insert("t", (9001, "a", "b", "c"))
        router = server.make_router(edges=[edge], policy="freshest")
        router.query(range_query_frame("t", low=0, high=10))
        stats = router.router.edge_stats("e1")
        assert "t__by_a1" in stats.cursors
        assert stats.cursors["t"] == edge.replica_lsns["t"]


# ---------------------------------------------------------------------------
# Batched acks over real TCP (edge served from a thread — tier-1 safe)
# ---------------------------------------------------------------------------


class TestBatchedAcksOverTcp:
    def _threaded_deployment(self, central):
        deploy = Deployment(central, io_timeout=5)
        host, port = deploy.address
        thread = threading.Thread(
            target=run_edge,
            args=("tcp-edge", host, port),
            kwargs={"max_reconnects": 0, "retry_attempts": 10,
                    "retry_delay": 0.05, "io_timeout": 5},
        )
        thread.start()
        return deploy, thread

    def test_query_does_not_hang_behind_deferred_acks(self):
        """Regression: the old ``TcpTransport.request`` drained one
        reply per sent frame before querying — under coalescing those
        acks are never coming and the query blocked until the receive
        timeout tore the link down.  Matching replies by type must keep
        the query path instant, and the piggybacked cursors must feed
        the central ack state so staleness settles without a sync."""
        central = make_central(ack_every=1000)
        client = central.make_client()
        deploy, thread = self._threaded_deployment(central)
        try:
            deploy.wait_for_edge("tcp-edge", timeout=15)
            for key in range(9001, 9006):
                central.insert("t", (key, "a", "b", "c"))
            start = time.perf_counter()
            resp = deploy.range_query("tcp-edge", "t", low=9001, high=9005)
            elapsed = time.perf_counter() - start
            assert elapsed < 3.0, f"query stalled {elapsed:.1f}s on deferred acks"
            assert len(resp.result.rows) == 5
            assert client.verify(resp).ok
            # The response's piggybacked cursors settled the window.
            assert central.staleness("tcp-edge", "t") == 0
            assert central.fanout.peer("tcp-edge").inflight == 0
        finally:
            deploy.shutdown()
            thread.join(timeout=10)

    def test_sync_settles_batched_acks_with_one_probe_round(self):
        central = make_central(ack_every=64)
        deploy, thread = self._threaded_deployment(central)
        try:
            deploy.wait_for_edge("tcp-edge", timeout=15)
            link = deploy.edges["tcp-edge"].transport
            before = ack_frames(link)
            for key in range(9001, 9011):
                central.insert("t", (key, "a", "b", "c"))
            deploy.sync("t")
            assert central.staleness("tcp-edge", "t") == 0
            # 10 delta frames settled by probe-solicited cumulative
            # acks — far fewer ack frames than deltas.
            assert ack_frames(link) - before <= 4
        finally:
            deploy.shutdown()
            thread.join(timeout=10)
