"""Property-style tests for :class:`repro.edge.replication.DeltaLog`
retention and gap invariants: truncation boundaries, ``barrier()``
semantics, and the agreement between ``has_gap`` and
``entries_since``."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import ReplicaDelta
from repro.edge.replication import DeltaLog, LogEntry
from repro.exceptions import DeltaGapError, ReplicaDeltaError


def stub_delta(lsn: int) -> ReplicaDelta:
    return ReplicaDelta(
        table="t",
        lsn_first=lsn,
        lsn_last=lsn,
        epoch=0,
        base_version=lsn - 1,
        new_version=lsn,
        structural=False,
        ops=(),
        node_updates=(),
        freed_nodes=(),
    )


def record(log: DeltaLog) -> int:
    lsn = log.next_lsn()
    log.append(LogEntry(lsn=lsn, delta=stub_delta(lsn), payload=b"p" * 8))
    return lsn


class TestInvariants:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(st.sampled_from(["record", "barrier"]), max_size=50),
        max_entries=st.integers(min_value=1, max_value=8),
    )
    def test_retention_and_gap_agreement(self, ops, max_entries):
        log = DeltaLog(table="t", max_entries=max_entries)
        for op in ops:
            if op == "record":
                record(log)
            else:
                log.barrier()

        # Retention bound holds and retained LSNs are a contiguous
        # suffix ending exactly at last_lsn.
        assert len(log) <= max_entries
        retained = [e.lsn for e in log.entries_since(log.first_retained_lsn - 1)] \
            if len(log) else []
        if retained:
            assert retained == list(
                range(log.first_retained_lsn, log.last_lsn + 1)
            )
            assert retained[-1] == log.last_lsn

        # has_gap and entries_since agree on EVERY cursor.
        for cursor in range(0, log.last_lsn + 2):
            if log.has_gap(cursor):
                with pytest.raises(DeltaGapError):
                    log.entries_since(cursor)
            else:
                entries = log.entries_since(cursor)
                if cursor >= log.last_lsn:
                    assert entries == []
                else:
                    # No gap and pending LSNs: the full contiguous run.
                    assert [e.lsn for e in entries] == list(
                        range(cursor + 1, log.last_lsn + 1)
                    )

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=40),
        max_entries=st.integers(min_value=1, max_value=8),
    )
    def test_truncation_boundary_cursors(self, total, max_entries):
        log = DeltaLog(table="t", max_entries=max_entries)
        for _ in range(total):
            record(log)
        first = log.first_retained_lsn

        # Cursor exactly at first_retained_lsn - 1: the oldest cursor
        # the log can still serve — never a gap, full suffix returned.
        assert not log.has_gap(first - 1)
        entries = log.entries_since(first - 1)
        assert [e.lsn for e in entries] == list(range(first, log.last_lsn + 1))

        # One further back is a gap iff anything was truncated.
        if first > 1:
            assert log.has_gap(first - 2)
            with pytest.raises(DeltaGapError):
                log.entries_since(first - 2)


class TestBarrier:
    def test_barrier_clears_and_strands_every_old_cursor(self):
        log = DeltaLog(table="t", max_entries=10)
        for _ in range(4):
            record(log)
        barrier_lsn = log.barrier()
        assert barrier_lsn == 5
        assert len(log) == 0
        # Every cursor below the barrier now has a gap (snapshot path);
        # a cursor at the barrier is current.
        for cursor in range(0, barrier_lsn):
            assert log.has_gap(cursor)
        assert not log.has_gap(barrier_lsn)
        assert log.entries_since(barrier_lsn) == []

    def test_recording_resumes_after_barrier(self):
        log = DeltaLog(table="t", max_entries=10)
        record(log)
        log.barrier()
        lsn = record(log)
        assert lsn == 3
        # A cursor at the barrier can catch up from the log again...
        assert [e.lsn for e in log.entries_since(2)] == [3]
        # ...but a pre-barrier cursor cannot.
        assert log.has_gap(1)

    def test_empty_log_edge_cases(self):
        log = DeltaLog(table="t")
        assert log.first_retained_lsn == 0
        assert not log.has_gap(0)
        assert log.entries_since(0) == []

    def test_append_rejects_unassigned_lsn(self):
        log = DeltaLog(table="t")
        with pytest.raises(ReplicaDeltaError):
            log.append(LogEntry(lsn=7, delta=stub_delta(7), payload=b"x"))
