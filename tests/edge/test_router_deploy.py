"""Verified routing over a real multi-process deployment (``-m socket``).

The router's acceptance scenario on real sockets: two edge OS
processes, a verified workload routed across them, SIGKILL of the
currently preferred edge mid-workload with **zero failed queries**
(failover absorbs the crash), and recovery — the killed edge rejoins
the rotation after it restarts, re-registers, and its cooldown lapses.

Also pins the metering invariant the router benches rely on: query
traffic is metered identically over an in-process link and a TCP link
(same frame bytes on the same channel kinds).
"""

import time

import pytest

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment
from repro.edge.transport import InProcessTransport, range_query_frame
from repro.workloads.generator import TableSpec, generate_table
from repro.workloads.queries import QueryWorkload

pytestmark = [pytest.mark.socket, pytest.mark.timeout(120)]

DB = "routerdeploydb"

SPEC = TableSpec(name="items", rows=120, columns=4, seed=3)


def make_central(**kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=61, **kwargs)
    schema, data = generate_table(SPEC)
    server.create_table(schema, data, fanout_override=6)
    return server


@pytest.fixture
def deployment(tmp_path):
    central = make_central()
    deploy = Deployment(central, log_dir=str(tmp_path / "edge-logs"))
    yield central, deploy
    deploy.shutdown()


class TestRouterOverSockets:
    def test_kill_preferred_edge_mid_workload_zero_failed_queries(
        self, deployment
    ):
        central, deploy = deployment
        deploy.launch_edge("edge-0")
        deploy.launch_edge("edge-1")
        deploy.wait_for_edge("edge-0")
        deploy.wait_for_edge("edge-1")
        verifying = deploy.make_router(
            policy="round_robin", failure_threshold=1, cooldown=1.0
        )
        workload = QueryWorkload(spec=SPEC, selectivity=0.2, seed=11)
        frames = list(workload.request_frames(60))

        # Phase 1: both edges serve.
        for frame in frames[:20]:
            assert verifying.query(frame).verdict.ok
        served = {s.name for s in verifying.stats().values() if s.served}
        assert served == {"edge-0", "edge-1"}

        # Phase 2: SIGKILL the edge the router would pick next; the
        # workload continues without a single failed query.
        preferred = verifying.router.select(frames[20])
        deploy.kill_edge(preferred)
        survivor = ({"edge-0", "edge-1"} - {preferred}).pop()
        for frame in frames[20:40]:
            resp = verifying.query(frame)
            assert resp.verdict.ok
            assert resp.edge == survivor
        assert verifying.router.failed_queries == 0
        assert verifying.accepts == 40
        assert verifying.router.edge_stats(preferred).failures >= 1

        # Phase 3: restart; the edge re-registers, heals via snapshot,
        # and — once its cooldown lapses — rejoins the rotation.
        deploy.restart_edge(preferred)
        deploy.wait_for_edge(preferred)
        assert central.staleness(preferred, "items") == 0
        time.sleep(1.1)  # let the router cooldown expire
        recovered = set()
        for frame in frames[40:]:
            resp = verifying.query(frame)
            assert resp.verdict.ok
            recovered.add(resp.edge)
        assert preferred in recovered, "restarted edge never rejoined"
        assert verifying.router.failed_queries == 0
        assert verifying.accepts == 60
        assert not any(s.quarantined for s in verifying.stats().values())

        # Writes made after the crash are queryable — and verified —
        # through the recovered fabric.
        central.insert("items", (9001, "a", "b", "c"))
        deploy.sync()
        resp = verifying.range_query("items", low=9001, high=9001)
        assert resp.verdict.ok and len(resp.result.rows) == 1

    def test_query_byte_metering_parity_inprocess_vs_tcp(self, deployment):
        """The same query frame must meter the same bytes on the same
        channel kinds whichever medium carries it (Transport ABC
        metering) — the invariant that makes in-process router benches
        transferable to TCP deployments."""
        central, deploy = deployment
        deploy.launch_edge("edge-0")
        deploy.wait_for_edge("edge-0")
        # Same-length name so the response frame's edge field (the one
        # legitimately differing byte run) has identical wire size.
        local = central.spawn_edge_server("edge-9")
        link = InProcessTransport("edge-9-query")
        link.connect(local.handle_frame)

        frame = range_query_frame("items", low=10, high=50)
        tcp = deploy.edges["edge-0"].transport
        tcp_down0 = tcp.down_channel.bytes_by_kind().get("query", 0)
        tcp_up0 = tcp.up_channel.bytes_by_kind().get("payload", 0)
        tcp_reply = tcp.request(frame)
        local_reply = link.request(frame)

        tcp_down = tcp.down_channel.bytes_by_kind()["query"] - tcp_down0
        tcp_up = tcp.up_channel.bytes_by_kind()["payload"] - tcp_up0
        assert tcp_down == link.down_channel.bytes_by_kind()["query"]
        assert tcp_up == link.up_channel.bytes_by_kind()["payload"]
        # Same replica state ⇒ byte-identical payload and cursor echo.
        assert tcp_reply.payload == local_reply.payload
        assert (tcp_reply.lsn, tcp_reply.epoch) == (
            local_reply.lsn,
            local_reply.epoch,
        )
