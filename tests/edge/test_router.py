"""Routing + adversary test battery for the verified query router
(DESIGN.md section 9).

Three layers, all deterministic:

* **Policy properties** on scripted channels with a fake clock —
  round-robin fairness and the freshest-policy invariant are checked
  property-style with hypothesis, the cooldown/recovery state machine
  and failover ordering example-style.
* **Adversary-under-routing** on a real 3-edge in-process fabric: one
  edge serves tampered data; the :class:`VerifyingRouter` must return a
  verified ACCEPT from another edge, quarantine the bad one, and
  surface the REJECT verdict in its stats.
* **Query-path fault injection** on :class:`InProcessTransport` —
  partition / drop / slow-hold now fail a synchronous ``request`` the
  same way socket faults do, and query traffic is metered on the link
  channels exactly like replication traffic.
"""

from dataclasses import dataclass, field
from typing import Any

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.adversary import DropTuple, ResponseTamper, ValueTamper
from repro.edge.central import CentralServer
from repro.edge.network import Channel
from repro.edge.router import (
    EdgeRouter,
    RoutingPolicy,
    TransportQueryChannel,
    VerifyingRouter,
    in_process_query_channel,
)
from repro.edge.transport import (
    InProcessTransport,
    QueryRequestFrame,
    QueryResponseFrame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
)
from repro.exceptions import RouterError, TransportError
from repro.workloads.generator import TableSpec, generate_table
from repro.workloads.queries import QueryWorkload

DB = "routerdb"


# ---------------------------------------------------------------------------
# Deterministic fakes
# ---------------------------------------------------------------------------


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@dataclass
class ScriptedChannel:
    """A fake query channel with scripted latency/failure behaviour.

    ``payload`` must be real serialized-result bytes when the test
    reads ``RoutedResponse.result``; policy-only tests can leave the
    placeholder (the router parses payloads only on success paths it
    returns).
    """

    name: str
    payload: bytes = b""
    latency: float = 0.01
    lsn: int = 0
    epoch: int = 1
    fail_next: int = 0           # raise TransportError for the next N requests
    error: str = ""              # answer with an error response instead
    requests: list = field(default_factory=list)

    def request(self, frame) -> tuple[QueryResponseFrame, float]:
        self.requests.append(frame)
        if self.fail_next > 0:
            self.fail_next -= 1
            raise TransportError(f"scripted fault on {self.name}")
        reply = QueryResponseFrame(
            edge=self.name,
            payload=self.payload,
            error=self.error,
            lsn=self.lsn,
            epoch=self.epoch,
        )
        return reply, self.latency


@pytest.fixture(scope="module")
def result_payload() -> bytes:
    """Real serialized-result bytes for the scripted channels."""
    central = CentralServer(db_name=DB, rsa_bits=512, seed=17)
    schema, rows = generate_table(TableSpec(name="t", rows=30, columns=3, seed=5))
    central.create_table(schema, rows, fanout_override=6)
    edge = central.spawn_edge_server("payload-edge")
    link = InProcessTransport("payload-link")
    link.connect(edge.handle_frame)
    reply = link.request(range_query_frame("t", low=5, high=12))
    return reply.payload


def make_router(channels, **kwargs) -> EdgeRouter:
    kwargs.setdefault("clock", FakeClock())
    return EdgeRouter(channels, **kwargs)


FRAME = QueryRequestFrame(kind="range", table="t", low=0, high=100)


# ---------------------------------------------------------------------------
# Cursor echo (the wire extension routing rides on)
# ---------------------------------------------------------------------------


class TestCursorEcho:
    def test_response_frame_round_trips_cursor(self):
        frame = QueryResponseFrame(
            edge="e1", payload=b"xy", error="", lsn=41, epoch=3
        )
        assert frame_from_bytes(frame_to_bytes(frame)) == frame

    def test_edge_echoes_replica_cursor(self):
        central = CentralServer(db_name=DB, rsa_bits=512, seed=23)
        schema, rows = generate_table(
            TableSpec(name="t", rows=40, columns=3, seed=2)
        )
        central.create_table(schema, rows, fanout_override=6)
        edge = central.spawn_edge_server("e1")
        resp = edge.range_query("t", low=0, high=10)
        assert resp.lsn == 0 and resp.epoch == edge.replica_epochs["t"]
        central.insert("t", (9001, "a", "b"))
        central.insert("t", (9002, "a", "b"))
        resp = edge.range_query("t", low=0, high=10)
        assert resp.lsn == edge.replica_lsns["t"] == 2

    def test_secondary_query_echoes_index_cursor(self):
        central = CentralServer(db_name=DB, rsa_bits=512, seed=23)
        schema, rows = generate_table(
            TableSpec(name="t", rows=40, columns=3, seed=2)
        )
        central.create_table(schema, rows, fanout_override=6)
        central.create_secondary_index("t", "a1", fanout_override=6)
        edge = central.spawn_edge_server("e1")
        resp = edge.secondary_range_query("t", "a1", low="a", high="zzzz")
        assert resp.lsn == edge.replica_lsns["t__by_a1"]


# ---------------------------------------------------------------------------
# Policy selection properties
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_round_robin_is_fair(self, result_payload):
        channels = [
            ScriptedChannel(f"e{i}", payload=result_payload) for i in range(4)
        ]
        router = make_router(channels, policy="round_robin")
        for _ in range(40):
            router.query(FRAME)
        assert [len(c.requests) for c in channels] == [10, 10, 10, 10]

    @settings(max_examples=50, deadline=None)
    @given(
        edges=st.integers(min_value=2, max_value=6),
        rounds=st.integers(min_value=1, max_value=5),
    )
    def test_round_robin_fairness_property(self, edges, rounds, result_payload):
        channels = [
            ScriptedChannel(f"e{i}", payload=result_payload)
            for i in range(edges)
        ]
        router = make_router(channels, policy="round_robin")
        for _ in range(edges * rounds):
            router.query(FRAME)
        assert all(len(c.requests) == rounds for c in channels)

    def test_lowest_latency_probes_then_prefers_fastest(self, result_payload):
        channels = [
            ScriptedChannel("fast", payload=result_payload, latency=0.01),
            ScriptedChannel("slow", payload=result_payload, latency=0.50),
        ]
        router = make_router(channels, policy="lowest_latency")
        for _ in range(10):
            router.query(FRAME)
        # One exploratory probe each, then every query goes to the
        # measured-fastest edge.
        assert len(channels[1].requests) == 1
        assert len(channels[0].requests) == 9

    @settings(max_examples=60, deadline=None)
    @given(
        lsns=st.lists(
            st.integers(min_value=0, max_value=50), min_size=2, max_size=6
        ),
        cooling=st.sets(st.integers(min_value=0, max_value=5)),
        data=st.data(),
    )
    def test_freshest_never_picks_strictly_staler(self, lsns, cooling, data):
        """The archetype property: with at least one healthy edge, the
        freshest policy never selects an edge strictly staler than some
        other healthy edge."""
        clock = FakeClock()
        channels = [ScriptedChannel(f"e{i}") for i in range(len(lsns))]
        router = make_router(channels, policy="freshest", clock=clock)
        healthy = []
        for i, lsn in enumerate(lsns):
            router.observe_cursor(f"e{i}", "t", lsn)
            if i in cooling:
                router.edge_stats(f"e{i}").cooldown_until = clock.now + 60
            else:
                healthy.append((f"e{i}", lsn))
        # Rotation state is arbitrary at selection time.
        router._rotation = data.draw(st.integers(min_value=0, max_value=11))
        if not healthy:
            return  # all cooling: any fallback order is acceptable
        picked = router.select(FRAME)
        picked_lsn = router.edge_stats(picked).cursors.get("t", 0)
        assert picked in dict(healthy)
        assert picked_lsn == max(lsn for _, lsn in healthy)

    def test_freshest_uses_cursor_echo(self, result_payload):
        channels = [
            ScriptedChannel("stale", payload=result_payload, lsn=3),
            ScriptedChannel("fresh", payload=result_payload, lsn=9),
        ]
        router = make_router(channels, policy="freshest")
        # Both edges are probed once (no hint yet → explore), in
        # rotation order.
        assert router.query(FRAME).edge == "stale"
        assert router.query(FRAME).edge == "fresh"
        # Hints now installed from the cursor echoes: only "fresh" wins.
        for _ in range(6):
            assert router.query(FRAME).edge == "fresh"

    def test_weighted_shifts_load_but_starves_nobody(self, result_payload):
        channels = [
            ScriptedChannel("fast", payload=result_payload, latency=0.01),
            ScriptedChannel("slow", payload=result_payload, latency=0.10),
        ]
        router = make_router(channels, policy="weighted")
        for _ in range(120):
            router.query(FRAME)
        fast, slow = len(channels[0].requests), len(channels[1].requests)
        assert fast + slow == 120
        assert slow >= 5, "weighted must not starve the slow edge"
        assert fast > slow * 4, "weighted must shift load to the fast edge"

    def test_weighted_ignores_excluded_edges_in_wrr_state(self, result_payload):
        """An excluded edge must not participate in the smooth-WRR
        bookkeeping — it can neither be debited as the phantom 'chosen'
        edge nor accumulate credit while out of the candidate set."""
        channels = [
            ScriptedChannel("a", payload=result_payload),
            ScriptedChannel("b", payload=result_payload),
        ]
        router = make_router(channels, policy="weighted")
        for _ in range(6):
            assert router.query(FRAME, exclude={"a"}).edge == "b"
        assert router._wrr_current["a"] == 0.0

    def test_policy_accepts_enum_and_string(self):
        channels = [ScriptedChannel("e0")]
        assert make_router(channels, policy="freshest").policy is RoutingPolicy.FRESHEST
        assert (
            make_router(channels, policy=RoutingPolicy.WEIGHTED).policy
            is RoutingPolicy.WEIGHTED
        )
        with pytest.raises(ValueError):
            make_router(channels, policy="nope")

    def test_duplicate_channel_names_rejected(self):
        with pytest.raises(RouterError):
            make_router([ScriptedChannel("e0"), ScriptedChannel("e0")])


# ---------------------------------------------------------------------------
# Cooldown / recovery state machine
# ---------------------------------------------------------------------------


class TestHealth:
    def test_failures_trip_cooldown_then_recover(self, result_payload):
        clock = FakeClock()
        bad = ScriptedChannel("bad", payload=result_payload, fail_next=2)
        good = ScriptedChannel("good", payload=result_payload)
        router = make_router(
            [bad, good],
            policy="round_robin",
            failure_threshold=2,
            cooldown=10.0,
            clock=clock,
        )
        # "bad" is only attempted when rotation puts it first (query 1
        # and 3 — failover serves those from "good"); its second
        # failure crosses the threshold into cooldown.
        router.query(FRAME)
        router.query(FRAME)
        router.query(FRAME)
        stats = router.edge_stats("bad")
        assert stats.consecutive_failures == 2
        assert stats.cooldown_until == clock.now + 10.0
        # While cooling, "bad" is ordered last — all traffic to "good".
        before = len(bad.requests)
        for _ in range(4):
            assert router.query(FRAME).edge == "good"
        assert len(bad.requests) == before
        # Cooldown lapses: "bad" is probed again and, now healthy,
        # rejoins the rotation (streak reset on success).
        clock.advance(10.1)
        served = {router.query(FRAME).edge for _ in range(4)}
        assert served == {"bad", "good"}
        assert router.edge_stats("bad").consecutive_failures == 0
        assert router.edge_stats("bad").cooldown_until == 0.0

    def test_failed_probe_reenters_cooldown_immediately(self, result_payload):
        clock = FakeClock()
        bad = ScriptedChannel("bad", payload=result_payload, fail_next=3)
        good = ScriptedChannel("good", payload=result_payload)
        router = make_router(
            [bad, good],
            policy="round_robin",
            failure_threshold=2,
            cooldown=10.0,
            clock=clock,
        )
        router.query(FRAME)
        router.query(FRAME)
        router.query(FRAME)  # second "bad" failure: cooldown armed
        clock.advance(10.1)
        # The probe (whenever rotation reaches "bad" again) fails: the
        # streak is already past the threshold, so one more failure
        # re-arms the cooldown at once.
        router.query(FRAME)
        router.query(FRAME)
        assert router.edge_stats("bad").consecutive_failures == 3
        assert router.edge_stats("bad").cooldown_until == clock.now + 10.0

    def test_all_edges_failing_raises_router_error(self):
        channels = [ScriptedChannel(f"e{i}", fail_next=99) for i in range(2)]
        router = make_router(channels)
        with pytest.raises(RouterError):
            router.query(FRAME)
        assert router.failed_queries == 1

    def test_error_responses_count_as_failures_not_link_faults(
        self, result_payload
    ):
        """An application-level error response fails the query over but
        is not a health signal: a healthy edge missing one replica must
        never be cooled down for the tables it serves fine."""
        broken = ScriptedChannel("broken", error="no replica of 't'")
        good = ScriptedChannel("good", payload=result_payload)
        router = make_router(
            [broken, good], policy="round_robin", failure_threshold=2
        )
        for _ in range(8):
            assert router.query(FRAME).edge == "good"
        stats = router.edge_stats("broken")
        assert stats.failures == 4  # attempted whenever rotation leads
        assert "no replica" in stats.last_error
        assert stats.consecutive_failures == 0
        assert stats.cooldown_until == 0.0


# ---------------------------------------------------------------------------
# Failover ordering
# ---------------------------------------------------------------------------


class TestFailover:
    def test_failover_follows_policy_order(self, result_payload):
        channels = [
            ScriptedChannel("a", payload=result_payload, latency=0.01),
            ScriptedChannel("b", payload=result_payload, latency=0.02),
            ScriptedChannel("c", payload=result_payload, latency=0.03),
        ]
        router = make_router(channels, policy="lowest_latency")
        for _ in range(3):  # probe all
            router.query(FRAME)
        assert router.ordering(FRAME) == ["a", "b", "c"]
        # Best edge fails: the next-best (by latency) serves; the
        # attempt list records the order tried.
        channels[0].fail_next = 1
        routed = router.query(FRAME)
        assert routed.edge == "b"
        assert routed.attempts == ("a", "b")
        assert router.failovers == 1

    def test_quarantined_edges_never_appear(self, result_payload):
        channels = [
            ScriptedChannel("a", payload=result_payload),
            ScriptedChannel("b", payload=result_payload),
        ]
        router = make_router(channels, policy="round_robin")
        router.quarantine("a", reason="tampered")
        for _ in range(5):
            assert router.query(FRAME).edge == "b"
        assert router.ordering(FRAME) == ["b"]
        router.release("a")
        assert set(router.ordering(FRAME)) == {"a", "b"}

    def test_exclude_narrows_candidates(self, result_payload):
        channels = [
            ScriptedChannel("a", payload=result_payload),
            ScriptedChannel("b", payload=result_payload),
        ]
        router = make_router(channels)
        assert router.query(FRAME, exclude={"a"}).edge == "b"
        with pytest.raises(RouterError):
            router.query(FRAME, exclude={"a", "b"})


# ---------------------------------------------------------------------------
# Adversary under routing (real 3-edge fabric)
# ---------------------------------------------------------------------------


def three_edge_fabric(**router_kwargs):
    central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
    schema, rows = generate_table(
        TableSpec(name="items", rows=90, columns=4, seed=6)
    )
    central.create_table(schema, rows, fanout_override=6)
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(3)]
    verifying = central.make_router(policy="round_robin", **router_kwargs)
    return central, edges, verifying


class TestAdversaryUnderRouting:
    def test_value_tamper_quarantined_and_failed_over(self):
        _central, edges, verifying = three_edge_fabric()
        ValueTamper(
            table="items", key=20, column="a1", new_value="evil"
        ).apply(edges[1])
        for _ in range(9):
            resp = verifying.range_query("items", low=10, high=40)
            assert resp.verdict.ok
            assert resp.edge != "edge-1"
        stats = verifying.stats()["edge-1"]
        assert stats.quarantined
        assert stats.rejects == 1
        assert "rejected" in stats.quarantine_reason
        assert verifying.rejects == 1 and verifying.accepts == 9
        # Counter semantics: a verify-reject retry is a failover of the
        # same logical query, never a second query.
        snap = verifying.snapshot()
        assert snap["queries"] == 9
        assert snap["failovers"] >= 1

    def test_drop_tuple_quarantined(self):
        _central, edges, verifying = three_edge_fabric()
        DropTuple(table="items", index=0).install(edges[2])
        for _ in range(6):
            assert verifying.range_query("items", low=5, high=25).verdict.ok
        assert verifying.stats()["edge-2"].quarantined
        assert verifying.rejects >= 1

    def test_response_tamper_quarantined(self):
        _central, edges, verifying = three_edge_fabric()
        ResponseTamper(row_index=0, column_index=1, new_value="mitm").install(
            edges[0]
        )
        for _ in range(6):
            assert verifying.range_query("items", low=5, high=25).verdict.ok
        assert verifying.stats()["edge-0"].quarantined

    def test_all_edges_tampered_raises(self):
        _central, edges, verifying = three_edge_fabric()
        for edge in edges:
            ValueTamper(
                table="items", key=20, column="a1", new_value="evil"
            ).apply(edge)
        with pytest.raises(RouterError):
            verifying.range_query("items", low=10, high=40)
        assert all(s.quarantined for s in verifying.stats().values())

    def test_rejected_query_reports_both_edges_tried(self):
        _central, edges, verifying = three_edge_fabric()
        ValueTamper(
            table="items", key=20, column="a1", new_value="evil"
        ).apply(edges[0])
        resp = verifying.range_query("items", low=10, high=40)
        assert resp.verdict.ok
        assert resp.rejected == ("edge-0",)
        assert resp.attempts[0] == "edge-0"
        assert resp.edge in ("edge-1", "edge-2")

    def test_stale_edge_avoided_by_freshest_but_still_verifies(self):
        """Lazy trust: a lagging replica's results are old but signed —
        they verify.  The freshest policy avoids the laggard; round
        robin would serve (verified) stale data from it."""
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="items", rows=60, columns=4, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        edges = [central.spawn_edge_server(f"edge-{i}") for i in range(3)]
        laggard = central.fanout.peer("edge-2").transport
        laggard.faults.hold = True
        for key in range(9001, 9006):
            central.insert("items", (key, "a", "b", "c"))
        assert central.staleness("edge-2", "items") > 0
        verifying = central.make_router(policy="freshest")
        for _ in range(6):
            resp = verifying.range_query("items", low=9001, high=9005)
            assert resp.verdict.ok
            assert resp.edge != "edge-2"
            assert len(resp.result.rows) == 5
        # The laggard still answers and its (stale) result verifies.
        laggard_resp = edges[2].range_query("items", low=9001, high=9005)
        assert central.make_client().verify(laggard_resp).ok
        assert len(laggard_resp.result.rows) == 0  # stale: inserts unseen


class TestFailureAccounting:
    def test_transport_failure_feeds_cooldown_exactly_once_per_query(self):
        """Regression: one logical verifying query re-ran the routing
        core after a verify-reject *without* excluding the edges that
        had already failed in transport — a partitioned edge ordered
        first by ``freshest`` was probed again in the reject round and
        its cooldown streak double-counted, so another edge's tampering
        pushed a merely-unreachable edge toward cooldown twice as fast.
        A transport failure must feed the health state exactly once per
        logical query."""
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="items", rows=90, columns=4, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        edges = [central.spawn_edge_server(f"edge-{i}") for i in range(3)]
        channels = [in_process_query_channel(e) for e in edges]
        channels[0].transport.faults.partitioned = True  # probe will fail
        ValueTamper(
            table="items", key=20, column="a1", new_value="evil"
        ).apply(edges[1])
        verifying = central.make_router(
            channels=channels, policy="freshest", failure_threshold=2
        )
        router = verifying.router
        # Deterministic freshest order: edge-0 first, then 1, then 2.
        router.observe_cursor("edge-0", "items", 1000)
        router.observe_cursor("edge-1", "items", 500)
        router.observe_cursor("edge-2", "items", 100)

        resp = verifying.range_query("items", low=10, high=40)
        assert resp.verdict.ok
        assert resp.edge == "edge-2"
        assert resp.rejected == ("edge-1",)
        stats = router.edge_stats("edge-0")
        assert stats.failures == 1
        assert stats.consecutive_failures == 1
        # threshold=2: a double-counted failure would have armed the
        # cooldown off the back of a single unreachable attempt.
        assert stats.cooldown_until == 0.0

    def test_piggybacked_cursor_hints_are_bounded(self, result_payload):
        """Piggybacked cursors are untrusted: an edge flooding every
        response with fabricated replica names must not grow a
        long-lived router's per-edge state without bound."""
        from repro.edge.router import MAX_CURSOR_HINTS

        router = make_router([ScriptedChannel("a", payload=result_payload)])
        stats = router.edge_stats("a")
        flood = QueryResponseFrame(
            edge="a",
            payload=result_payload,
            lsn=1,
            cursors=tuple(
                (f"fake-{i}", 1, 0) for i in range(MAX_CURSOR_HINTS + 200)
            ),
        )
        router._record_success(stats, flood, 0.01, "items")
        assert len(stats.cursors) <= MAX_CURSOR_HINTS + 1  # + queried echo
        # Known replicas keep updating even once the bound is hit.
        update = QueryResponseFrame(
            edge="a", payload=result_payload, lsn=9,
            cursors=(("fake-0", 9, 0),),
        )
        router._record_success(stats, update, 0.01, "items")
        assert stats.cursors["fake-0"] == 9

    def test_failed_edge_recovers_on_later_queries(self):
        """The exactly-once rule is per logical query: later queries
        still probe the edge, and a recovery clears the streak."""
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="items", rows=90, columns=4, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        edges = [central.spawn_edge_server(f"edge-{i}") for i in range(2)]
        channels = [in_process_query_channel(e) for e in edges]
        channels[0].transport.faults.partitioned = True
        verifying = central.make_router(
            channels=channels, policy="freshest", failure_threshold=3
        )
        router = verifying.router
        router.observe_cursor("edge-0", "items", 1000)
        router.observe_cursor("edge-1", "items", 100)
        for expected in (1, 2):
            assert verifying.range_query("items", low=5, high=15).verdict.ok
            assert router.edge_stats("edge-0").consecutive_failures == expected
        channels[0].transport.faults.clear()
        assert verifying.range_query("items", low=5, high=15).edge == "edge-0"
        assert router.edge_stats("edge-0").consecutive_failures == 0


# ---------------------------------------------------------------------------
# Query-path fault injection + metering (InProcessTransport.request)
# ---------------------------------------------------------------------------


class TestQueryPathFaults:
    def _edge_and_link(self):
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="t", rows=50, columns=3, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        edge = central.spawn_edge_server("e1")
        link = InProcessTransport("query-link")
        link.connect(edge.handle_frame)
        return central, edge, link

    def test_partitioned_link_raises_and_meters_nothing(self):
        _central, _edge, link = self._edge_and_link()
        link.faults.partitioned = True
        with pytest.raises(TransportError, match="down"):
            link.request(range_query_frame("t", low=0, high=10))
        assert link.down_channel.total_bytes == 0

    def test_dropped_request_raises_but_bytes_left_sender(self):
        _central, _edge, link = self._edge_and_link()
        link.faults.drop_next = 1
        with pytest.raises(TransportError, match="lost"):
            link.request(range_query_frame("t", low=0, high=10))
        # The request left the sender (metered) but no reply came back.
        assert link.down_channel.bytes_by_kind().get("query", 0) > 0
        assert link.up_channel.total_bytes == 0

    def test_slow_hold_times_out_then_drains_on_flush(self):
        _central, _edge, link = self._edge_and_link()
        link.faults.hold = True
        with pytest.raises(TransportError, match="timed out"):
            link.request(range_query_frame("t", low=0, high=10))
        assert link.queued_frames == 1
        # The fault clears: the held query drains and the edge's reply
        # (with cursor echo) is metered on the up channel like any
        # other response.
        link.faults.clear()
        replies = link.flush()
        assert len(replies) == 1 and isinstance(replies[0], QueryResponseFrame)
        assert link.up_channel.bytes_by_kind().get("payload", 0) > 0

    def test_query_metering_matches_frame_sizes_exactly(self):
        """The metering invariant the router benches rely on: the link
        channels record exactly the serialized frame bytes, for query
        traffic as for replication traffic (Transport ABC metering)."""
        _central, _edge, link = self._edge_and_link()
        frame = range_query_frame("t", low=3, high=17)
        reply = link.request(frame)
        assert link.down_channel.total_bytes == len(frame_to_bytes(frame))
        assert link.up_channel.total_bytes == len(frame_to_bytes(reply))

    def test_router_fails_over_on_injected_faults(self):
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="t", rows=50, columns=3, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        edges = [central.spawn_edge_server(f"e{i}") for i in range(2)]
        channels = [in_process_query_channel(edge) for edge in edges]
        router = make_router(channels, policy="round_robin")
        # Partition e0's query link: every query fails over to e1.
        channels[0].transport.faults.partitioned = True
        for _ in range(4):
            assert router.query(range_query_frame("t", low=0, high=10)).edge == "e1"
        assert router.edge_stats("e0").failures > 0
        # Heal: e0 rejoins the rotation.
        channels[0].transport.faults.clear()
        router.edge_stats("e0").cooldown_until = 0.0
        served = {router.query(range_query_frame("t", low=0, high=10)).edge
                  for _ in range(4)}
        assert served == {"e0", "e1"}

    def test_query_exceptions_become_error_frames_in_process(self):
        """An in-process edge answers a failing query with an error
        response frame (like the TCP serve loop) instead of raising
        through the transport — the router's verify-or-failover path
        must see frames, never exceptions."""
        from repro.exceptions import ReplicationError

        _central, edge, link = self._edge_and_link()
        reply = link.request(
            QueryRequestFrame(kind="secondary", table="t", attribute="ghost")
        )
        assert isinstance(reply, QueryResponseFrame)
        assert "ReplicationError" in reply.error and reply.payload == b""
        # The same-process convenience API keeps its typed exception.
        with pytest.raises(ReplicationError):
            edge.secondary_range_query("t", "ghost", low=0, high=1)

    def test_router_raises_router_error_when_no_edge_holds_replica(self):
        """Every edge answering 'no replica' exhausts the candidates as
        failovers and surfaces as RouterError — a typed edge exception
        must never escape the routed query path."""
        central = CentralServer(db_name=DB, rsa_bits=512, seed=31)
        schema, rows = generate_table(
            TableSpec(name="t", rows=50, columns=3, seed=6)
        )
        central.create_table(schema, rows, fanout_override=6)
        for i in range(2):
            central.spawn_edge_server(f"e{i}")
        verifying = central.make_router(policy="round_robin")
        with pytest.raises(RouterError):
            verifying.secondary_range_query("t", "ghost", low=0, high=1)
        # Per-replica errors are not link faults: nobody cooled down.
        for stats in verifying.stats().values():
            assert stats.failures == 1
            assert stats.consecutive_failures == 0

    def test_simulated_latency_is_deterministic(self):
        """In-process query latency is the channel model's transfer
        seconds — a function of bytes and rtt, not wall clock."""
        _central, edge, _link = self._edge_and_link()
        slow_down = Channel(rtt_seconds=0.2)
        slow_up = Channel(rtt_seconds=0.2)
        channel = in_process_query_channel(edge, slow_down, slow_up)
        frame = range_query_frame("t", low=0, high=10)
        _reply, latency1 = channel.request(frame)
        _reply, latency2 = channel.request(frame)
        assert latency1 == latency2
        assert latency1 > 0.4  # two 0.2 s rtt legs + transfer time


# ---------------------------------------------------------------------------
# The acceptance fabric, in miniature (the bench runs it at 500 queries)
# ---------------------------------------------------------------------------


class TestVerifiedWorkload:
    def test_mixed_fabric_serves_workload_fully_verified(self):
        central = CentralServer(db_name=DB, rsa_bits=512, seed=47)
        spec = TableSpec(name="items", rows=120, columns=4, seed=9)
        schema, rows = generate_table(spec)
        central.create_table(schema, rows, fanout_override=8)
        edges = [central.spawn_edge_server(f"edge-{i}") for i in range(3)]
        # Tampered keys every 20 apart: any 24-row query window covers
        # at least one, so edge-1's first served result REJECTs — the
        # quarantine point is deterministic, not seed-dependent.
        for key in range(0, 120, 20):
            ValueTamper(
                table="items", key=key, column="a1", new_value="evil"
            ).apply(edges[1])
        slow = TransportQueryChannel(
            "edge-2",
            _connected_link(edges[2], rtt=0.25),
        )
        channels = [
            in_process_query_channel(edges[0]),
            in_process_query_channel(edges[1]),
            slow,
        ]
        verifying = VerifyingRouter(
            make_router(channels, policy="lowest_latency"),
            central.make_client(),
        )
        workload = QueryWorkload(spec=spec, selectivity=0.2, seed=4)
        for frame in workload.request_frames(60):
            assert verifying.query(frame).verdict.ok
        assert verifying.accepts == 60
        assert verifying.stats()["edge-1"].quarantined
        # The slow edge was probed but not preferred.
        assert verifying.stats()["edge-2"].served <= 2
        assert verifying.stats()["edge-0"].served >= 55


def _connected_link(edge, rtt: float) -> InProcessTransport:
    link = InProcessTransport(
        edge.name,
        Channel(rtt_seconds=rtt),
        Channel(rtt_seconds=rtt),
    )
    link.connect(edge.handle_frame)
    return link
