"""Relay semantics, in-process (DESIGN.md §13).

The relay is wired exactly as over a socket — central → relay over one
:class:`InProcessTransport` (the relay's ``handle_frame`` as handler),
relay → edges over per-edge links its own :class:`RelayFanout` pumps —
but everything runs in this process so the tests can inspect byte
streams, shuffle ack orderings, and corrupt the store directly.

Covers: byte-identical store-and-forward, verified queries through the
relay, min-cursor aggregation (held edge, fresh edge omitting a table),
the "ack omitting a table is no news" bugfix end to end, aggregation
monotonicity under shuffled/duplicated acks (hypothesis), tamper
escalation through the relay, key rotation through the relay, and
verbatim ConfigFrame/ShardMap pass-through.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import result_from_bytes
from repro.edge.central import CentralServer
from repro.edge.edge_server import EdgeServer
from repro.edge.relay import RelayServer, _TableStore
from repro.edge.sharding import ShardMap
from repro.edge.transport import (
    CursorAckFrame,
    DeltaFrame,
    HelloFrame,
    InProcessTransport,
    SnapshotFrame,
    config_from_frame,
    config_to_frame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
)
from repro.workloads.generator import TableSpec, generate_table

DB = "relaydb"
TABLE = "items"


def make_central(rows=60, **kwargs):
    central = CentralServer(DB, seed=7, rsa_bits=512, **kwargs)
    schema, data = generate_table(
        TableSpec(name=TABLE, rows=rows, columns=3, seed=5)
    )
    central.create_table(schema, data, fanout_override=6)
    return central


def attach_relay(central, name="relay-0", **kwargs):
    """Central → relay link, mirroring the socket handshake."""
    relay = RelayServer(name, **kwargs)
    up = InProcessTransport(name)
    up.connect(relay.handle_frame)
    cfg = config_to_frame(
        central.edge_config(),
        ack_every=central.ack_every,
        ack_bytes=central.ack_bytes,
    )
    relay.adopt_config(cfg)
    sent_epoch = max((record[0] for record in cfg.epochs), default=-1)
    central.attach_remote_edge(name, up, config_epoch=sent_epoch)
    return relay, up


def attach_edge(relay, name):
    """Relay → edge link, mirroring the downstream handshake."""
    edge = EdgeServer(
        name=name, config=config_from_frame(relay.downstream_config_frame())
    )
    down = InProcessTransport(name)
    down.connect(edge.handle_frame)
    relay.attach_edge(name, down)
    return edge, down


def agg_map(relay):
    """``aggregated_cursors()`` as ``{table: (lsn, epoch)}``."""
    return {t: (lsn, epoch) for t, lsn, epoch in relay.aggregated_cursors()}


def tree_sync(central, relay, edges, rounds=10):
    """Drive the whole tree to quiescence, relaying spontaneous
    upstream acks by hand (the socket serve loop's job)."""
    relay_peer = central.fanout.peer(relay.name)
    for _ in range(rounds):
        central.propagate()
        central.fanout.drain(wait=True)
        relay.fanout.pump()
        relay.fanout.drain(wait=True)
        frames = [frame_from_bytes(b) for b in relay.pending_upstream()]
        if frames:
            central.fanout._process_replies(relay_peer, frames)
        settled = all(
            central.fanout.staleness(relay.name, t) == 0
            for t in central.vbtrees
        ) and all(
            relay.fanout.staleness(name, t) == 0
            for name in edges
            for t in central.vbtrees
        )
        if settled:
            return True
    return False


class TestHelloRole:
    def test_default_role_adds_no_bytes(self):
        """An edge hello encodes exactly as before the role field —
        old peers interoperate byte-for-byte."""
        hello = HelloFrame(edge="edge-0", cursors=((TABLE, 3, 0),))
        assert hello.role == "edge"
        decoded = frame_from_bytes(frame_to_bytes(hello))
        assert decoded == hello
        # The optional trailing field costs nothing when defaulted: a
        # relay hello is strictly longer than the same edge hello.
        relay_hello = dataclasses.replace(hello, role="relay")
        assert len(frame_to_bytes(relay_hello)) > len(frame_to_bytes(hello))
        assert frame_from_bytes(frame_to_bytes(relay_hello)).role == "relay"


class TestStoreAndForward:
    def test_byte_identical_frames_and_verified_queries(self):
        """Every snapshot/delta frame an edge receives is byte-equal to
        one the central sent the relay, and queries through the relay
        verify end to end."""
        central = make_central()
        relay, up = attach_relay(central)

        upstream_frames = []
        inner_handle = relay.handle_frame

        def tap_relay(data):
            frame = frame_from_bytes(data)
            if isinstance(frame, (SnapshotFrame, DeltaFrame)):
                upstream_frames.append(data)
            return inner_handle(data)

        up.connect(tap_relay)

        downstream_frames = {}
        edges = {}
        for name in ("edge-0", "edge-1"):
            edge, down = attach_edge(relay, name)
            edges[name] = edge
            downstream_frames[name] = taps = []
            inner = edge.handle_frame

            def tap_edge(data, inner=inner, taps=taps):
                frame = frame_from_bytes(data)
                if isinstance(frame, (SnapshotFrame, DeltaFrame)):
                    taps.append(data)
                return inner(data)

            down.connect(tap_edge)

        assert tree_sync(central, relay, edges)
        for key in range(1000, 1010):
            central.insert(TABLE, (key, "a", "b"))
        assert tree_sync(central, relay, edges)

        # Byte identity: the relay re-serialized nothing it could alter.
        sent = set(upstream_frames)
        assert sent, "central shipped no replication frames"
        for name, received in downstream_frames.items():
            assert received, f"{name} received no replication frames"
            for data in received:
                assert data in sent, (
                    f"{name} got a frame the central never produced"
                )

        # Round-robin queries hit both edges; every result verifies.
        client = central.make_client()
        answered = set()
        for _ in range(4):
            reply = up.request(range_query_frame(TABLE, 1000, 1009, None, None))
            assert not reply.error
            result = result_from_bytes(reply.payload)
            assert client.verify(result).ok
            assert len(result.keys) == 10
            answered.add(reply.edge)
        assert answered == {"edge-0", "edge-1"}

    def test_relay_holds_no_signing_key(self):
        """The trust claim, structurally: nothing reachable from the
        relay exposes a private key — its config is the public
        verification bundle only."""
        central = make_central()
        relay, _up = attach_relay(central)
        assert not hasattr(relay.config.keyring, "private_key_for")
        record = relay.config.keyring.public_key_for(
            relay.config.keyring.current_epoch
        )
        assert not hasattr(record, "d") and not hasattr(record, "private")


class TestCursorAggregation:
    def test_held_edge_pins_the_aggregate(self):
        """The upstream cursor is the min over connected edges: one
        slow (held) edge pins it even while its sibling advances."""
        central = make_central()
        relay, up = attach_relay(central)
        edges = {}
        transports = {}
        for name in ("edge-0", "edge-1"):
            edges[name], transports[name] = attach_edge(relay, name)
        assert tree_sync(central, relay, edges)
        base = agg_map(relay)[TABLE]

        transports["edge-1"].faults.hold = True
        for key in range(2000, 2005):
            central.insert(TABLE, (key, "a", "b"))
        for _ in range(4):
            central.propagate()
            central.fanout.drain(wait=True)
            relay.fanout.pump()

        fast = relay.fanout.peer("edge-0").acked_lsns[TABLE]
        slow = relay.fanout.peer("edge-1").acked_lsns[TABLE]
        assert fast > slow
        agg = agg_map(relay)[TABLE]
        assert agg == (slow, relay.fanout.peer("edge-1").acked_epochs[TABLE])
        assert agg[0] == base[0]

        transports["edge-1"].faults.hold = False
        transports["edge-1"].flush()
        assert tree_sync(central, relay, edges)
        assert agg_map(relay)[TABLE][0] == relay.store[TABLE].head

    def test_fresh_edge_omits_table_and_cannot_stall_or_regress(self):
        """The satellite bugfix scenario end to end: a fresh edge joins
        mid-stream, so the relay's aggregate *omits* the table.  The
        central must treat that as no news — its banked cursor for the
        relay neither regresses nor wedges the settle path — and once
        the fresh edge heals, settle completes."""
        central = make_central()
        relay, up = attach_relay(central)
        edges = {"edge-0": attach_edge(relay, "edge-0")[0]}
        assert tree_sync(central, relay, edges)
        relay_peer = central.fanout.peer(relay.name)
        banked = relay_peer.acked_lsns[TABLE]
        assert banked == relay.store[TABLE].head

        # Fresh replica-less edge: no cursor for TABLE yet.
        edges["edge-1"] = attach_edge(relay, "edge-1")[0]
        assert TABLE not in agg_map(relay)

        # An explicitly empty cumulative ack is "no news", not "lost
        # everything".
        central.fanout._process_replies(
            relay_peer,
            [CursorAckFrame(edge=relay.name, cursors=())],
        )
        assert relay_peer.acked_lsns[TABLE] == banked

        # New writes flow while the aggregate still omits the table;
        # the banked cursor must move forward or hold, never regress,
        # and the bounded drain must terminate (no stall).
        for key in range(3000, 3005):
            central.insert(TABLE, (key, "a", "b"))
        central.propagate()
        central.fanout.drain(wait=True)
        assert relay_peer.acked_lsns[TABLE] >= banked

        # Full settle once the subtree heals.
        assert tree_sync(central, relay, edges)
        assert central.fanout.staleness(relay.name, TABLE) == 0
        assert agg_map(relay)[TABLE][0] == relay.store[TABLE].head


# Shared fixtures for the hypothesis property: RSA keygen is the
# expensive part, so one central's config is reused across examples
# (the relay under test is rebuilt per example).
_AGG_CENTRAL = None


def _agg_config():
    global _AGG_CENTRAL
    if _AGG_CENTRAL is None:
        _AGG_CENTRAL = make_central(rows=12)
    return config_to_frame(_AGG_CENTRAL.edge_config())


HEAD = 40


@st.composite
def ack_schedules(draw):
    """A shuffled, duplicate-ridden schedule of per-edge ack events."""
    events = draw(
        st.lists(
            st.tuples(st.sampled_from(["edge-0", "edge-1"]),
                      st.integers(min_value=0, max_value=HEAD)),
            min_size=1,
            max_size=30,
        )
    )
    dup = draw(st.integers(min_value=0, max_value=5))
    events = events + events[:dup]
    random.Random(draw(st.integers(0, 2**16))).shuffle(events)
    return events


class TestAggregationMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(schedule=ack_schedules())
    def test_aggregate_is_monotone_and_exact(self, schedule):
        """Under any interleaving/duplication of downstream acks the
        aggregated cursor never decreases, and ends at exactly the min
        over edges of each edge's own (monotone) max."""
        cfg = _agg_config()
        relay = RelayServer("relay-agg")
        relay.adopt_config(cfg)
        epoch = relay.config.keyring.current_epoch
        relay.store[TABLE] = _TableStore(
            snapshot=SnapshotFrame(
                table=TABLE, lsn=0, epoch=epoch, naive=False, payload=b""
            ),
            head=HEAD,
            epoch=epoch,
        )
        for name in ("edge-0", "edge-1"):
            link = InProcessTransport(name)
            link.connect(lambda data: [])
            relay.attach_edge(name, link)

        applied = {"edge-0": None, "edge-1": None}
        last = agg_map(relay).get(TABLE, (-1, -1))
        for name, lsn in schedule:
            relay.fanout.observe_response_cursors(name, ((TABLE, lsn, epoch),))
            applied[name] = max(lsn, applied[name] or 0)
            agg = agg_map(relay).get(TABLE)
            if agg is not None:
                assert agg >= last, "aggregate regressed"
                last = agg

        if all(v is not None for v in applied.values()):
            assert last == (min(applied.values()), epoch)
        else:
            # An edge that never acked keeps the table out of the
            # aggregate entirely — omission, not a zero claim.
            assert TABLE not in agg_map(relay)


class TestTamperThroughRelay:
    def test_corrupt_stored_delta_rejected_and_store_dropped(self):
        """Tampering inside the relay: the edge rejects the corrupted
        frame (end-to-end signature), the relay's store re-verify
        fails, the store is dropped, an immediate diverged nack goes
        upstream (never aggregated away), and the central re-seeds the
        whole subtree."""
        central = make_central()
        relay, up = attach_relay(central)
        edges = {"edge-0": attach_edge(relay, "edge-0")[0]}
        assert tree_sync(central, relay, edges)

        for key in range(4000, 4003):
            central.insert(TABLE, (key, "a", "b"))
        # Land the frames on the relay only (no downstream pump yet).
        central.propagate()
        central.fanout.drain(wait=True)
        assert relay.store[TABLE].deltas

        stored = relay.store[TABLE].deltas[-1]
        payload = bytearray(stored.payload)
        payload[len(payload) // 2] ^= 0xFF
        stored.payload = bytes(payload)

        relay.fanout.pump()
        relay.fanout.drain(wait=True)

        # The edge never applied tampered data, and the relay condemned
        # its own store.
        assert relay.store[TABLE].snapshot is None
        nacks = [frame_from_bytes(b) for b in relay.pending_upstream()]
        diverged = [
            f for f in nacks
            if getattr(f, "reason", "") == "diverged" and not f.ok
        ]
        assert diverged, "no immediate upstream diverged nack"
        central.fanout._process_replies(
            central.fanout.peer(relay.name), nacks
        )

        assert tree_sync(central, relay, edges)
        client = central.make_client()
        reply = up.request(range_query_frame(TABLE, 4000, 4002, None, None))
        result = result_from_bytes(reply.payload)
        assert client.verify(result).ok
        assert len(result.keys) == 3


class TestRouterQuarantineThroughRelay:
    def test_adversarial_edge_quarantines_its_relay_channel(self):
        """An adversarial edge behind one relay corrupts its query
        answers; the verifying router rejects them, quarantines that
        relay's channel, and serves every request — verified — from
        the sibling relay.  Callers never see an unverified result."""
        from repro.edge.router import (
            EdgeRouter,
            TransportQueryChannel,
            VerifyingRouter,
        )

        central = make_central()
        links = {}
        relays = {}
        for rname, ename in (("relay-0", "edge-0"), ("relay-1", "edge-1")):
            relay, up = attach_relay(central, rname)
            relays[rname] = relay
            links[rname] = up
            edge, down = attach_edge(relay, ename)
            if rname == "relay-0":
                inner = edge.handle_frame

                def corrupt(data, inner=inner):
                    replies = []
                    for raw in inner(data):
                        frame = frame_from_bytes(raw)
                        if (
                            hasattr(frame, "payload")
                            and hasattr(frame, "error")
                            and frame.payload
                        ):
                            bad = bytearray(frame.payload)
                            bad[len(bad) // 2] ^= 0xFF
                            frame = dataclasses.replace(
                                frame, payload=bytes(bad)
                            )
                        replies.append(frame_to_bytes(frame))
                    return replies

                down.connect(corrupt)
            for _ in range(8):
                central.propagate()
                central.fanout.drain(wait=True)
                relay.fanout.pump()
                relay.fanout.drain(wait=True)
                frames = [
                    frame_from_bytes(b) for b in relay.pending_upstream()
                ]
                if frames:
                    central.fanout._process_replies(
                        central.fanout.peer(rname), frames
                    )

        channels = [
            TransportQueryChannel(name, links[name]) for name in sorted(links)
        ]
        router = EdgeRouter(channels, policy="round_robin", failure_threshold=1)
        verifying = VerifyingRouter(router, central.make_client())
        for _ in range(4):
            resp = verifying.range_query(TABLE, low=1, high=50)
            assert resp.verdict.ok
            assert resp.edge == "relay-1"
        stats = verifying.stats()
        assert stats["relay-0"].quarantined
        assert verifying.rejects >= 1 and verifying.accepts == 4


class TestRotationAndConfigPassThrough:
    def test_key_rotation_heals_through_relay(self):
        """A rotation invalidates the relay's stored chain epoch; the
        central re-seeds it, the relay refreshes its edges with the new
        (verbatim) config and re-snapshots them, and queries verify
        under the new key."""
        central = make_central()
        relay, up = attach_relay(central)
        edges = {n: attach_edge(relay, n)[0] for n in ("edge-0", "edge-1")}
        assert tree_sync(central, relay, edges)
        old_epoch = relay.store[TABLE].epoch

        central.rotate_key()
        cfg = config_to_frame(
            central.edge_config(),
            ack_every=central.ack_every,
            ack_bytes=central.ack_bytes,
        )
        replies = relay.handle_frame(frame_to_bytes(cfg))
        assert frame_from_bytes(replies[0]).reason == "config"

        central.insert(TABLE, (5000, "a", "b"))
        assert tree_sync(central, relay, edges)
        assert relay.store[TABLE].epoch > old_epoch
        client = central.make_client()
        reply = up.request(range_query_frame(TABLE, 5000, 5000, None, None))
        assert client.verify(result_from_bytes(reply.payload)).ok

    def test_config_and_shard_map_pass_through_verbatim(self):
        """The downstream ConfigFrame is the upstream one, byte for
        byte — including the optional trailing shard id + ShardMap."""
        central = make_central()
        shard_map = ShardMap(2, seed=1)
        shard_map.place_table(TABLE, 0)
        cfg = config_to_frame(
            central.edge_config(), ack_every=3, ack_bytes=4096,
            shard_id=0, shard_map=shard_map.to_wire(),
        )
        relay = RelayServer("relay-0")
        relay.adopt_config(cfg)
        out = relay.downstream_config_frame()
        assert frame_to_bytes(out) == frame_to_bytes(cfg)
        assert out.shard_id == 0
        assert relay.ack_every == 3 and relay.ack_bytes == 4096
