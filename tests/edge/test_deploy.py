"""Multi-process deployment over loopback TCP (``-m socket``).

The acceptance scenario for the real-socket transport: central + edge
servers as **separate OS processes**, replication and authenticated
queries over real sockets, and process-level fault injection (SIGKILL
mid-stream) healing through the ordinary nack→retry→snapshot path.

These tests spawn subprocesses, so they are marked ``socket`` and
deselected by default (see ``pytest.ini``); CI runs them in their own
job with ``pytest-timeout`` so a hung subprocess fails fast.
"""

import subprocess
import sys

import pytest

from repro.edge.central import CentralServer, RemoteEdgeHandle
from repro.edge.deploy import Deployment
from repro.workloads.generator import TableSpec, generate_table

pytestmark = [pytest.mark.socket, pytest.mark.timeout(120)]

DB = "deploydb"


def make_central(rows=120, **kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=61, **kwargs)
    schema, data = generate_table(
        TableSpec(name="items", rows=rows, columns=4, seed=3)
    )
    server.create_table(schema, data, fanout_override=6)
    return server


@pytest.fixture
def deployment(tmp_path):
    central = make_central()
    deploy = Deployment(central, log_dir=str(tmp_path / "edge-logs"))
    yield central, deploy
    deploy.shutdown()


class TestMultiProcessDeployment:
    def test_end_to_end_two_edges_kill_and_heal(self, deployment):
        """The PR's acceptance scenario, end to end: launch central + 2
        edge OS processes over loopback TCP, insert and query through a
        real socket with client-side VO verification, kill one edge
        mid-stream, restart it, and observe snapshot heal to cursor
        parity."""
        central, deploy = deployment
        client = central.make_client()
        deploy.launch_edge("edge-0")
        deploy.launch_edge("edge-1")
        deploy.wait_for_edge("edge-0")
        deploy.wait_for_edge("edge-1")
        assert deploy.edges["edge-0"].alive and deploy.edges["edge-1"].alive
        # Remote edges are represented centrally by name-only handles —
        # the trust boundary is now the OS process boundary.
        assert all(
            isinstance(e, RemoteEdgeHandle) for e in central.edges
        )

        # Inserts replicate over the wire to both processes.
        for key in range(9001, 9006):
            central.insert("items", (key, "a", "b", "c"))
        deploy.sync()
        assert central.staleness("edge-0", "items") == 0
        assert central.staleness("edge-1", "items") == 0

        # An authenticated range query through a real socket, verified
        # client-side.
        resp = deploy.range_query("edge-0", "items", low=9001, high=9005)
        assert len(resp.result.rows) == 5
        assert client.verify(resp).ok

        # Kill edge-1 mid-stream: the write path must keep going.
        deploy.kill_edge("edge-1")
        for key in range(9006, 9011):
            central.insert("items", (key, "x", "y", "z"))
        deploy.sync()
        assert central.staleness("edge-0", "items") == 0
        resp = deploy.range_query("edge-0", "items", low=9001, high=9010)
        assert len(resp.result.rows) == 10
        assert client.verify(resp).ok

        # Restart: the fresh process registers with no cursors and the
        # fan-out engine heals it via snapshot to cursor parity.
        deploy.restart_edge("edge-1")
        deploy.wait_for_edge("edge-1")
        assert central.staleness("edge-1", "items") == 0
        kinds = deploy.edges["edge-1"].transport.down_channel.bytes_by_kind()
        assert kinds.get("snapshot", 0) > 0, "heal must ship a snapshot"
        resp = deploy.range_query("edge-1", "items", low=9001, high=9010)
        assert len(resp.result.rows) == 10
        assert client.verify(resp).ok

    def test_killed_edge_fails_sends_without_blocking(self, deployment):
        central, deploy = deployment
        deploy.launch_edge("edge-0")
        deploy.wait_for_edge("edge-0")
        deploy.kill_edge("edge-0")
        # Eager replication against a dead process: sends map to
        # ``failed`` outcomes (never exceptions) and cursors fall behind.
        for key in range(9001, 9004):
            central.insert("items", (key, "a", "b", "c"))
        assert central.staleness("edge-0", "items") > 0
        assert not deploy.edges["edge-0"].connected

    def test_secondary_index_query_over_socket(self, deployment):
        central, deploy = deployment
        client = central.make_client()
        central.create_secondary_index("items", "a1", fanout_override=6)
        deploy.launch_edge("edge-0")
        deploy.wait_for_edge("edge-0")
        resp = deploy.secondary_range_query(
            "edge-0", "items", "a1", low="a", high="zzzz"
        )
        assert client.verify(resp).ok

    def test_stopped_edge_does_not_stall_eager_writes(self, deployment):
        """A SIGSTOPped (alive but unresponsive) edge process must not
        slow the eager write path: the non-blocking drain leaves its
        acks outstanding and the in-flight window absorbs the lag."""
        import signal
        import time

        central, deploy = deployment
        deploy.launch_edge("edge-0")
        deploy.wait_for_edge("edge-0")
        proc = deploy.edges["edge-0"].process
        proc.send_signal(signal.SIGSTOP)
        try:
            start = time.perf_counter()
            for key in range(9001, 9006):
                central.insert("items", (key, "a", "b", "c"))
            elapsed = time.perf_counter() - start
            # Pre-fix this took io_timeout (10 s) per pump; post-fix the
            # writes never wait on the wedged peer.
            assert elapsed < 5.0, f"writes stalled {elapsed:.1f}s on a slow edge"
            assert central.staleness("edge-0", "items") > 0
        finally:
            proc.send_signal(signal.SIGCONT)
        deploy.sync()
        assert central.staleness("edge-0", "items") == 0
        resp = deploy.range_query("edge-0", "items", low=9001, high=9005)
        assert len(resp.result.rows) == 5

    def test_key_rotation_reaches_remote_edges(self, deployment):
        central, deploy = deployment
        client = central.make_client()
        deploy.launch_edge("edge-0")
        deploy.wait_for_edge("edge-0")
        central.rotate_key(seed=62)
        deploy.sync()
        assert central.staleness("edge-0", "items") == 0
        resp = deploy.range_query("edge-0", "items", low=None, high=None)
        assert client.verify(resp).ok


class TestKillMidWindow:
    @pytest.mark.parametrize(
        "io_mode",
        [
            "threaded",
            pytest.param("reactor", marks=pytest.mark.event_loop),
        ],
    )
    def test_peer_killed_mid_window_nacks_heals_and_drops_no_tail(
        self, tmp_path, io_mode
    ):
        """Satellite regression (DESIGN.md section 10.4): pipelined
        sends under *deferred* acks, then SIGKILL the edge with the
        window full.  The failure must surface as failed sends and a
        forgotten optimistic tail — never a hang in the settle loop
        (the old one-reply-per-frame drain would block on acks that
        are never coming) and never a silently-dropped tail: after the
        restart the snapshot heal must reach cursor parity with every
        committed row present.  Runs against both I/O paths: under the
        reactor the kill is discovered by a failed vectored flush (or
        the RST read event) instead of a failed ``sendall``, and the
        readiness-driven settle must forget the tail just as fast."""
        import time

        central = make_central(ack_every=64)  # acks far beyond the window
        deploy = Deployment(
            central, log_dir=str(tmp_path / "edge-logs"), io_mode=io_mode
        )
        try:
            client = central.make_client()
            deploy.launch_edge("edge-0")
            deploy.wait_for_edge("edge-0")
            # Pipeline a window of deltas the edge will never ack (the
            # coalescing threshold is far away), then kill it.
            for key in range(9001, 9006):
                central.insert("items", (key, "a", "b", "c"))
            assert central.fanout.peer("edge-0").inflight > 0
            deploy.kill_edge("edge-0")
            # Mid-batch writes against the dead peer: ECONNRESET/EPIPE
            # must map to failed sends, never an exception or a stall.
            start = time.perf_counter()
            for key in range(9006, 9011):
                central.insert("items", (key, "x", "y", "z"))
            deploy.sync()
            elapsed = time.perf_counter() - start
            assert elapsed < 8.0, f"settle hung {elapsed:.1f}s on a dead peer"
            assert not deploy.edges["edge-0"].connected
            # The optimistic tail was forgotten, not silently dropped:
            # nothing is left pretending to be in flight.
            assert central.fanout.peer("edge-0").inflight == 0
            assert central.staleness("edge-0", "items") > 0

            deploy.restart_edge("edge-0")
            deploy.wait_for_edge("edge-0")
            assert central.staleness("edge-0", "items") == 0
            kinds = deploy.edges["edge-0"].transport.down_channel.bytes_by_kind()
            assert kinds.get("snapshot", 0) > 0, "heal must ship a snapshot"
            resp = deploy.range_query("edge-0", "items", low=9001, high=9010)
            assert len(resp.result.rows) == 10  # the full tail survived
            assert client.verify(resp).ok
        finally:
            deploy.shutdown()


class TestRestartHygiene:
    def test_restart_reresolves_connections_and_leaks_no_fds(self, tmp_path):
        """Regression: every relaunch under a ``log_dir`` opened a new
        per-edge log handle while the superseded one stayed open until
        shutdown — one leaked file descriptor per restart.  Restart
        must re-resolve the query connection to the new process and
        return the process-wide fd count to its baseline."""
        import os

        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc (Linux)")

        def fd_count() -> int:
            return len(os.listdir("/proc/self/fd"))

        central = make_central()
        deploy = Deployment(central, log_dir=str(tmp_path / "edge-logs"))
        try:
            client = central.make_client()
            deploy.launch_edge("edge-0")
            deploy.wait_for_edge("edge-0")
            baseline = fd_count()
            first_transport = deploy.edges["edge-0"].transport
            for round_ in range(4):
                deploy.restart_edge("edge-0")
                deploy.wait_for_edge("edge-0")
                central.insert("items", (9100 + round_, "a", "b", "c"))
                deploy.sync()
                resp = deploy.range_query(
                    "edge-0", "items", low=9100, high=9100 + round_
                )
                assert len(resp.result.rows) == round_ + 1
                assert client.verify(resp).ok
            # The query path resolved a fresh connection, and the old
            # one is closed — not lingering as a stale socket.
            assert deploy.edges["edge-0"].transport is not first_transport
            assert not first_transport.connected
            # Four restarts must not accumulate descriptors (old log
            # handles + old sockets are closed on relaunch).
            assert fd_count() <= baseline + 1, (
                f"fd leak: baseline {baseline}, now {fd_count()}"
            )
        finally:
            deploy.shutdown()


class TestServeCli:
    def test_handshake_failure_exits_nonzero(self):
        """`python -m repro.edge.serve` against a dead port must fail
        fast with a non-zero exit code, not hang."""
        import os

        from repro.edge.deploy import _src_root

        env = dict(os.environ)
        env["PYTHONPATH"] = _src_root()
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.edge.serve",
                "--name", "cli-edge", "--host", "127.0.0.1", "--port", "1",
                "--retry-attempts", "2", "--retry-delay", "0.01",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert proc.returncode == 1
        assert "fatal" in proc.stderr
