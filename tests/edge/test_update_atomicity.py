"""One logical update = one transaction across every tree it touches.

Regression tests for the pre-transport behaviour where
``CentralServer.insert`` committed the base-table transaction *before*
maintaining secondary indexes and join views: a lock denial there left
the base tree updated, the indexes not, and the replication log
recording a state no replica could reach."""

import pytest

from repro.core.update import digest_resource
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType
from repro.edge.central import CentralServer
from repro.exceptions import LockError

DB = "atomdb"


def make_server():
    server = CentralServer(db_name=DB, rsa_bits=512, seed=61)
    schema = TableSchema(
        "m",
        (Column("id", IntType()), Column("temp", IntType()),
         Column("site", IntType())),
        key="id",
    )
    server.create_table(
        schema, [(i, 15 + i % 20, i % 3) for i in range(40)],
        fanout_override=6,
    )
    return server


def block_root(server, tree_name):
    """Start a transaction holding an X-lock on a tree's root digest."""
    vbt = server.vbtrees[tree_name]
    blocker = server.txn_manager.begin()
    assert blocker.lock_exclusive(
        digest_resource(vbt.table_name, vbt.tree.root.node_id)
    )
    return blocker


def snapshot_state(server, names):
    return {
        name: (
            len(server.vbtrees[name].tree),
            server.vbtrees[name].version,
            server.replicator.log_for(name).last_lsn,
        )
        for name in names
    }


class TestInsertAtomicity:
    def test_blocked_secondary_index_aborts_whole_insert(self):
        server = make_server()
        index = server.create_secondary_index("m", "temp", fanout_override=6)
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        blocker = block_root(server, index)
        before = snapshot_state(server, ["m", index])
        rows_before = len(server.tables["m"])

        with pytest.raises(LockError):
            server.insert("m", (9001, 99, 1))

        # Base table, base tree, index tree, and both logs: untouched.
        assert len(server.tables["m"]) == rows_before
        assert snapshot_state(server, ["m", index]) == before
        server.vbtrees["m"].audit()
        server.vbtrees[index].audit()

        blocker.commit()
        server.insert("m", (9001, 99, 1))
        assert server.staleness(edge, "m") == 0
        assert server.staleness(edge, index) == 0
        resp = edge.secondary_range_query("m", "temp", low=99, high=99)
        assert len(resp.result.rows) == 1
        assert client.verify(resp).ok
        edge.replica("m").audit()
        edge.replica(index).audit()

    def test_blocked_join_view_aborts_whole_insert(self):
        server = make_server()
        sites = TableSchema(
            "sites",
            (Column("site", IntType()), Column("zone", IntType())),
            key="site",
        )
        server.create_table(sites, [(i, i * 10) for i in range(3)])
        server.create_join_view("m_sites", "m", "sites", "site", "site")
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        blocker = block_root(server, "m_sites")
        before = snapshot_state(server, ["m", "m_sites"])
        view_rows = len(server.views["m_sites"].table)

        with pytest.raises(LockError):
            server.insert("m", (9001, 99, 1))  # joins site 1 -> view insert

        assert snapshot_state(server, ["m", "m_sites"]) == before
        assert len(server.views["m_sites"].table) == view_rows
        server.vbtrees["m"].audit()
        server.vbtrees["m_sites"].audit()

        blocker.commit()
        server.insert("m", (9001, 99, 1))
        resp = edge.range_query("m_sites")
        assert client.verify(resp).ok
        assert len(resp.result.rows) == view_rows + 1

    def test_duplicate_key_rejected_before_any_mutation(self):
        from repro.exceptions import DuplicateKeyError

        server = make_server()
        index = server.create_secondary_index("m", "temp", fanout_override=6)
        before = snapshot_state(server, ["m", index])
        with pytest.raises(DuplicateKeyError):
            server.insert("m", (10, 1, 1))
        assert snapshot_state(server, ["m", index]) == before
        assert server.txn_manager.active_count() == 0


class TestDeleteAtomicity:
    def test_blocked_secondary_index_aborts_whole_delete(self):
        server = make_server()
        index = server.create_secondary_index("m", "temp", fanout_override=6)
        edge = server.spawn_edge_server("e1")
        blocker = block_root(server, index)
        before = snapshot_state(server, ["m", index])

        with pytest.raises(LockError):
            server.delete("m", 10)

        assert snapshot_state(server, ["m", index]) == before
        assert 10 in server.tables["m"]
        server.vbtrees["m"].audit()
        server.vbtrees[index].audit()

        blocker.commit()
        server.delete("m", 10)
        assert server.staleness(edge, "m") == 0
        assert server.staleness(edge, index) == 0
        edge.replica("m").audit()
        edge.replica(index).audit()

    def test_no_dangling_transactions_after_aborts(self):
        server = make_server()
        index = server.create_secondary_index("m", "temp", fanout_override=6)
        blocker = block_root(server, index)
        for _ in range(3):
            with pytest.raises(LockError):
                server.insert("m", (9001, 99, 1))
            with pytest.raises(LockError):
                server.delete("m", 10)
        blocker.commit()
        assert server.txn_manager.active_count() == 0
        server.insert("m", (9001, 99, 1))
        server.delete("m", 10)
