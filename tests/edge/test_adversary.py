"""Adversary-model tests: what the mechanism detects, and the one
documented boundary it does not."""

import pytest

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table

DB = "advdb"


@pytest.fixture
def setup():
    server = CentralServer(db_name=DB, rsa_bits=512, seed=21)
    schema, rows = generate_table(TableSpec(name="t", rows=120, columns=5, seed=4))
    server.create_table(schema, rows, fanout_override=6)
    edge = server.spawn_edge_server("compromised")
    client = server.make_client()
    return server, edge, client


class TestDetectedAttacks:
    def test_at_rest_value_tamper_detected(self, setup):
        _server, edge, client = setup
        ValueTamper(table="t", key=50, column="a1", new_value="evil").apply(edge)
        resp = edge.range_query("t", low=40, high=60)
        verdict = client.verify(resp)
        assert not verdict.ok

    def test_tamper_outside_query_range_not_flagged(self, setup):
        """Tampering is only visible in results that cover the tuple —
        queries elsewhere still verify."""
        _server, edge, client = setup
        ValueTamper(table="t", key=50, column="a1", new_value="evil").apply(edge)
        resp = edge.range_query("t", low=80, high=100)
        assert client.verify(resp).ok

    def test_spurious_tuple_detected(self, setup):
        _server, edge, client = setup
        SpuriousTuple(table="t", row_values=(1000, "f", "a", "k", "e")).apply(edge)
        resp = edge.range_query("t", low=990, high=1010)
        assert len(resp.result.rows) == 1  # the fake tuple is returned
        assert not client.verify(resp).ok

    def test_in_flight_response_tamper_detected(self, setup):
        _server, edge, client = setup
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert not client.verify(resp).ok

    def test_drop_without_cover_detected(self, setup):
        _server, edge, client = setup
        DropTuple(table="t", index=2, cover=False).install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert not client.verify(resp).ok

    def test_stale_replay_detected_after_rotation(self):
        server = CentralServer(
            db_name=DB,
            rsa_bits=512,
            seed=22,
            replication=ReplicationMode.LAZY,
        )
        schema, rows = generate_table(TableSpec(name="t", rows=60, columns=4))
        server.create_table(schema, rows, fanout_override=6)
        stale_edge = server.spawn_edge_server("stale")
        client = server.make_client()

        # Before rotation: the stale edge's data verifies fine.
        assert client.verify(stale_edge.range_query("t", low=0, high=10)).ok

        server.rotate_key(seed=23)       # epoch 1; epoch 0 expires at t=0
        server.keyring.tick()            # time moves past the validity window

        assert StaleReplay(table="t").is_stale(server, stale_edge)
        verdict = client.verify(stale_edge.range_query("t", low=0, high=10))
        assert not verdict.ok
        assert "stale" in verdict.reason

        # A freshly propagated edge verifies again under the new epoch.
        server.propagate()
        assert client.verify(stale_edge.range_query("t", low=0, high=10)).ok


class TestTrustModelBoundary:
    def test_drop_with_cover_passes(self, setup):
        """The documented boundary (Section 3.1): a *malicious* edge
        that re-covers dropped tuples with their signed digests defeats
        completeness checking.  The paper assumes edges don't do this."""
        _server, edge, client = setup
        DropTuple(table="t", index=2, cover=True).install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert len(resp.result.rows) == 30  # one of 31 dropped
        assert client.verify(resp).ok       # and yet it verifies

    def test_drop_with_cover_on_projected_query_passes(self, setup):
        _server, edge, client = setup
        DropTuple(table="t", index=0, cover=True).install(edge)
        resp = edge.range_query("t", low=0, high=30, columns=("id", "a1"))
        assert client.verify(resp).ok


class TestDeltaAdversary:
    """Attacks on the replication wire (DESIGN.md section 6): a
    tampered, forged, replayed, or out-of-order ReplicaDelta must be
    rejected by the edge, and a forged delta must never yield a
    verifying query result."""

    def _server_with_edge(self, replication=ReplicationMode.LAZY):
        server = CentralServer(
            db_name=DB, rsa_bits=512, seed=29, replication=replication
        )
        schema, rows = generate_table(TableSpec(name="t", rows=80, columns=4))
        server.create_table(schema, rows, fanout_override=6)
        edge = server.spawn_edge_server("victim")
        return server, edge, server.make_client()

    def test_tampered_delta_payload_rejected(self):
        from repro.exceptions import ReplicaDeltaError

        server, edge, client = self._server_with_edge()
        server.insert("t", (9001, "a", "b", "c"))
        payload = bytearray(
            server.replicator.log_for("t").entries_since(0)[0].payload
        )
        payload[len(payload) // 2] ^= 0xFF  # flip a bit mid-body
        with pytest.raises(ReplicaDeltaError):
            edge.apply_delta("t", bytes(payload))
        # The replica is untouched: queries still verify, without the row.
        resp = edge.range_query("t", low=9001, high=9001)
        assert resp.result.rows == []
        assert client.verify(resp).ok

    def test_forged_delta_rejected_no_verifying_result(self):
        """A hacker who cannot sign fabricates a delta inserting a
        tuple with garbage signatures; the edge rejects it outright."""
        import random

        from repro.core.delta import (
            DeltaOpKind,
            NodeDigestUpdate,
            ReplicaDelta,
            TupleOp,
        )
        from repro.core.wire import delta_body_bytes
        from repro.crypto.signatures import SignedDigest
        from repro.db.rows import Row
        from repro.exceptions import DeltaTamperError

        server, edge, client = self._server_with_edge()
        vbt = edge.replica("t")
        rng = random.Random(5)
        fake_sig = lambda: SignedDigest(signature=rng.getrandbits(256), epoch=0)
        row = Row(vbt.schema, (6666, "f", "a", "ke"))
        engine = vbt.signing.engine
        digests = engine.tuple_digests("t", row)
        forged = ReplicaDelta(
            table="t",
            lsn_first=1,
            lsn_last=1,
            epoch=0,
            base_version=vbt.version,
            new_version=vbt.version + 1,
            structural=False,
            ops=(
                TupleOp(
                    kind=DeltaOpKind.INSERT,
                    values=tuple(row.values),
                    attribute_values=digests.attribute_values,
                    tuple_value=digests.tuple_value,
                    signed_tuple=fake_sig(),
                    signed_attrs=tuple(fake_sig() for _ in row.values),
                ),
            ),
            node_updates=(
                NodeDigestUpdate(
                    node_id=vbt.tree.root.node_id,
                    value=1,
                    signed=fake_sig(),
                    display=1,
                    signed_display=fake_sig(),
                ),
            ),
            freed_nodes=(),
            signature=fake_sig(),
        )
        sig_len = server.public_key.signature_len
        payload = delta_body_bytes(forged, sig_len) + forged.signature.to_bytes(
            sig_len
        )
        with pytest.raises(DeltaTamperError):
            edge.apply_delta("t", payload)
        resp = edge.range_query("t", low=6666, high=6666)
        assert resp.result.rows == []
        assert client.verify(resp).ok

    def test_forcibly_applied_forged_delta_fails_client_verification(self):
        """Even if a hacker bypasses the edge's wire checks and mutates
        the replica with forged digests, the client catches it — the
        security invariant does not rest on the edge behaving."""
        import random

        from repro.core.delta import apply_delta
        from repro.core.delta import DeltaOpKind, ReplicaDelta, TupleOp
        from repro.crypto.signatures import SignedDigest
        from repro.db.rows import Row

        server, edge, client = self._server_with_edge()
        vbt = edge.replica("t")
        rng = random.Random(7)
        fake_sig = lambda: SignedDigest(signature=rng.getrandbits(256), epoch=0)
        row = Row(vbt.schema, (6666, "f", "a", "ke"))
        digests = vbt.signing.engine.tuple_digests("t", row)
        forged = ReplicaDelta(
            table="t",
            lsn_first=1,
            lsn_last=1,
            epoch=0,
            base_version=vbt.version,
            new_version=vbt.version + 1,
            structural=False,
            ops=(
                TupleOp(
                    kind=DeltaOpKind.INSERT,
                    values=tuple(row.values),
                    attribute_values=digests.attribute_values,
                    tuple_value=digests.tuple_value,
                    signed_tuple=fake_sig(),
                    signed_attrs=tuple(fake_sig() for _ in row.values),
                ),
            ),
            node_updates=(),
            freed_nodes=(),
        )
        apply_delta(vbt, forged)  # bypasses EdgeServer.apply_delta checks
        resp = edge.range_query("t", low=6666, high=6666)
        assert len(resp.result.rows) == 1  # the forged tuple is served
        assert not client.verify(resp).ok  # and the client rejects it

    def test_replayed_delta_rejected(self):
        from repro.exceptions import StaleDeltaError

        server, edge, _client = self._server_with_edge()
        server.insert("t", (9001, "a", "b", "c"))
        payload = server.replicator.log_for("t").entries_since(0)[0].payload
        edge.apply_delta("t", payload)
        with pytest.raises(StaleDeltaError):
            edge.apply_delta("t", payload)
        edge.replica("t").audit()

    def test_out_of_order_delta_rejected(self):
        from repro.exceptions import DeltaGapError

        server, edge, _client = self._server_with_edge()
        server.insert("t", (9001, "a", "b", "c"))
        server.insert("t", (9002, "a", "b", "c"))
        entries = server.replicator.log_for("t").entries_since(0)
        with pytest.raises(DeltaGapError):
            edge.apply_delta("t", entries[1].payload)

    def test_old_epoch_delta_rejected_after_rotation(self):
        from repro.exceptions import ReplicaDeltaError

        server, edge, _client = self._server_with_edge()
        server.insert("t", (9001, "a", "b", "c"))
        old_payload = server.replicator.log_for("t").entries_since(0)[0].payload
        server.rotate_key(seed=30)
        server.keyring.tick()
        with pytest.raises(ReplicaDeltaError):
            edge.apply_delta("t", old_payload)


class TestAdversaryErrors:
    def test_value_tamper_missing_key(self, setup):
        from repro.exceptions import EdgeError

        _server, edge, _client = setup
        with pytest.raises(EdgeError):
            ValueTamper(table="t", key=99999, column="a1", new_value="x").apply(edge)

    def test_interceptors_clearable(self, setup):
        _server, edge, client = setup
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(edge)
        edge.clear_interceptors()
        assert client.verify(edge.range_query("t", low=0, high=10)).ok
