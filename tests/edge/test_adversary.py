"""Adversary-model tests: what the mechanism detects, and the one
documented boundary it does not."""

import pytest

from repro.edge.adversary import (
    DropTuple,
    ResponseTamper,
    SpuriousTuple,
    StaleReplay,
    ValueTamper,
)
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table

DB = "advdb"


@pytest.fixture
def setup():
    server = CentralServer(db_name=DB, rsa_bits=512, seed=21)
    schema, rows = generate_table(TableSpec(name="t", rows=120, columns=5, seed=4))
    server.create_table(schema, rows, fanout_override=6)
    edge = server.spawn_edge_server("compromised")
    client = server.make_client()
    return server, edge, client


class TestDetectedAttacks:
    def test_at_rest_value_tamper_detected(self, setup):
        _server, edge, client = setup
        ValueTamper(table="t", key=50, column="a1", new_value="evil").apply(edge)
        resp = edge.range_query("t", low=40, high=60)
        verdict = client.verify(resp)
        assert not verdict.ok

    def test_tamper_outside_query_range_not_flagged(self, setup):
        """Tampering is only visible in results that cover the tuple —
        queries elsewhere still verify."""
        _server, edge, client = setup
        ValueTamper(table="t", key=50, column="a1", new_value="evil").apply(edge)
        resp = edge.range_query("t", low=80, high=100)
        assert client.verify(resp).ok

    def test_spurious_tuple_detected(self, setup):
        _server, edge, client = setup
        SpuriousTuple(table="t", row_values=(1000, "f", "a", "k", "e")).apply(edge)
        resp = edge.range_query("t", low=990, high=1010)
        assert len(resp.result.rows) == 1  # the fake tuple is returned
        assert not client.verify(resp).ok

    def test_in_flight_response_tamper_detected(self, setup):
        _server, edge, client = setup
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert not client.verify(resp).ok

    def test_drop_without_cover_detected(self, setup):
        _server, edge, client = setup
        DropTuple(table="t", index=2, cover=False).install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert not client.verify(resp).ok

    def test_stale_replay_detected_after_rotation(self):
        server = CentralServer(
            db_name=DB,
            rsa_bits=512,
            seed=22,
            replication=ReplicationMode.LAZY,
        )
        schema, rows = generate_table(TableSpec(name="t", rows=60, columns=4))
        server.create_table(schema, rows, fanout_override=6)
        stale_edge = server.spawn_edge_server("stale")
        client = server.make_client()

        # Before rotation: the stale edge's data verifies fine.
        assert client.verify(stale_edge.range_query("t", low=0, high=10)).ok

        server.rotate_key(seed=23)       # epoch 1; epoch 0 expires at t=0
        server.keyring.tick()            # time moves past the validity window

        assert StaleReplay(table="t").is_stale(stale_edge)
        verdict = client.verify(stale_edge.range_query("t", low=0, high=10))
        assert not verdict.ok
        assert "stale" in verdict.reason

        # A freshly propagated edge verifies again under the new epoch.
        server.propagate()
        assert client.verify(stale_edge.range_query("t", low=0, high=10)).ok


class TestTrustModelBoundary:
    def test_drop_with_cover_passes(self, setup):
        """The documented boundary (Section 3.1): a *malicious* edge
        that re-covers dropped tuples with their signed digests defeats
        completeness checking.  The paper assumes edges don't do this."""
        _server, edge, client = setup
        DropTuple(table="t", index=2, cover=True).install(edge)
        resp = edge.range_query("t", low=0, high=30)
        assert len(resp.result.rows) == 30  # one of 31 dropped
        assert client.verify(resp).ok       # and yet it verifies

    def test_drop_with_cover_on_projected_query_passes(self, setup):
        _server, edge, client = setup
        DropTuple(table="t", index=0, cover=True).install(edge)
        resp = edge.range_query("t", low=0, high=30, columns=("id", "a1"))
        assert client.verify(resp).ok


class TestAdversaryErrors:
    def test_value_tamper_missing_key(self, setup):
        from repro.exceptions import EdgeError

        _server, edge, _client = setup
        with pytest.raises(EdgeError):
            ValueTamper(table="t", key=99999, column="a1", new_value="x").apply(edge)

    def test_interceptors_clearable(self, setup):
        _server, edge, client = setup
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(edge)
        edge.clear_interceptors()
        assert client.verify(edge.range_query("t", low=0, high=10)).ok
