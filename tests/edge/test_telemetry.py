"""Swallowed-error telemetry: counted, logged, and gate-able.

The silent-``except`` sweep routes every caught exception through
:mod:`repro.edge.telemetry` — expected faults to named sites, anything
else to a ``*.unexpected`` site whose total the chaos battery gates at
zero.  These tests pin the counter/keying/logging contract the sweep
relies on.
"""

import logging

from repro.edge import telemetry


class TestNote:
    def setup_method(self):
        telemetry.reset()

    def test_counts_by_site_and_exception_type(self):
        telemetry.note("relay.verify_table", ValueError("x"))
        telemetry.note("relay.verify_table", ValueError("y"))
        telemetry.note("relay.verify_table", KeyError("z"))
        counters = telemetry.counters()
        assert counters["relay.verify_table:ValueError"] == 2
        assert counters["relay.verify_table:KeyError"] == 1

    def test_total_and_prefix_filter(self):
        telemetry.note("deploy.accept_loop.handshake", OSError())
        telemetry.note("tcp.recv", OSError())
        assert telemetry.total() == 2
        assert telemetry.total("deploy.") == 1

    def test_unexpected_total_isolates_gated_sites(self):
        telemetry.note("relay.accept_loop.handshake", OSError())
        assert telemetry.unexpected_total() == 0
        telemetry.note("relay.accept_loop.unexpected", RuntimeError("?"))
        telemetry.note("edge_host.serve.unexpected", RuntimeError("?"))
        assert telemetry.unexpected_total() == 2

    def test_reset_clears(self):
        telemetry.note("tcp.send", OSError())
        telemetry.reset()
        assert telemetry.counters() == {}
        assert telemetry.total() == 0

    def test_note_emits_one_log_line(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.edge"):
            telemetry.note("tcp.framing", ValueError("bad magic"),
                           detail="peer=edge-0")
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "tcp.framing" in message
        assert "ValueError" in message
        assert "peer=edge-0" in message
