"""Bounded relay frame store: accounting, eviction, compaction, heal.

The relay keeps whole verbatim frames (a snapshot plus the delta chain
extending it) and, unbounded, that store grows with write volume
forever.  ``max_store_bytes`` caps it: when snapshot + chain exceed the
cap the relay deterministically evicts the table to empty and nacks
``diverged`` upstream — the ordinary snapshot-heal escalation *is* the
compaction path, so the bound never invents a new recovery mechanism.
A snapshot alone is never evicted (it is the minimal heal unit; caps
smaller than one snapshot must not livelock).
"""

import pytest

from repro.core.wire import result_from_bytes
from repro.edge.central import CentralServer
from repro.edge.edge_server import EdgeServer
from repro.edge.relay import RelayServer
from repro.edge.transport import (
    InProcessTransport,
    config_from_frame,
    config_to_frame,
    frame_from_bytes,
    frame_to_bytes,
    range_query_frame,
)
from repro.workloads.generator import TableSpec, generate_table

DB = "relaystoredb"
TABLE = "items"


def make_central(rows=40, **kwargs):
    central = CentralServer(DB, seed=7, rsa_bits=512, **kwargs)
    schema, data = generate_table(
        TableSpec(name=TABLE, rows=rows, columns=3, seed=5)
    )
    central.create_table(schema, data, fanout_override=6)
    return central


def attach_relay(central, name="relay-0", **kwargs):
    relay = RelayServer(name, **kwargs)
    up = InProcessTransport(name)
    up.connect(relay.handle_frame)
    cfg = config_to_frame(
        central.edge_config(),
        ack_every=central.ack_every,
        ack_bytes=central.ack_bytes,
    )
    relay.adopt_config(cfg)
    sent_epoch = max((record[0] for record in cfg.epochs), default=-1)
    central.attach_remote_edge(name, up, config_epoch=sent_epoch)
    return relay, up


def attach_edge(relay, name):
    edge = EdgeServer(
        name=name, config=config_from_frame(relay.downstream_config_frame())
    )
    down = InProcessTransport(name)
    down.connect(edge.handle_frame)
    relay.attach_edge(name, down)
    return edge, down


def tree_sync(central, relay, edges, rounds=20):
    relay_peer = central.fanout.peer(relay.name)
    for _ in range(rounds):
        central.propagate()
        central.fanout.drain(wait=True)
        relay.fanout.pump()
        relay.fanout.drain(wait=True)
        frames = [frame_from_bytes(b) for b in relay.pending_upstream()]
        if frames:
            central.fanout._process_replies(relay_peer, frames)
        settled = all(
            central.fanout.staleness(relay.name, t) == 0
            for t in central.vbtrees
        ) and all(
            relay.fanout.staleness(name, t) == 0
            for name in edges
            for t in central.vbtrees
        )
        if settled:
            return True
    return False


def build_tree(rows=40, edge_names=("edge-0", "edge-1"), **relay_kwargs):
    central = make_central(rows=rows)
    relay, up = attach_relay(central, **relay_kwargs)
    edges = {n: attach_edge(relay, n)[0] for n in edge_names}
    assert tree_sync(central, relay, edges)
    return central, relay, up, edges


class TestRetainedBytes:
    def test_accounts_snapshot_plus_chain(self):
        central, relay, up, edges = build_tree()
        st = relay.store[TABLE]
        assert st.snapshot is not None
        expected = len(st.snapshot.payload) + sum(
            len(d.payload) for d in st.deltas
        )
        assert st.retained_bytes() == expected

    def test_grows_with_deltas(self):
        central, relay, up, edges = build_tree()
        st = relay.store[TABLE]
        before = st.retained_bytes()
        central.insert(TABLE, (9001, "a", "b"))
        assert tree_sync(central, relay, edges)
        assert len(st.deltas) >= 1
        assert st.retained_bytes() > before


class TestByteCapEviction:
    def test_over_cap_evicts_and_heals_by_snapshot(self):
        """Chain growth past the cap → deterministic eviction →
        ``diverged`` nack → upstream ships a fresh snapshot at head —
        the store ends compact and queries still verify."""
        central, relay, up, edges = build_tree()
        snapshot_bytes = len(relay.store[TABLE].snapshot.payload)
        # Cap just above the current snapshot: the next delta trips it.
        relay.max_store_bytes = snapshot_bytes + 100
        for key in range(9001, 9011):
            central.insert(TABLE, (key, "a", "b"))
        assert tree_sync(central, relay, edges)
        assert relay.counters["store_evictions"] >= 1
        st = relay.store[TABLE]
        # Healed: fresh snapshot at the head, chain empty (compact).
        assert st.snapshot is not None
        assert st.deltas == []
        assert st.head == st.snapshot.lsn
        client = central.make_client()
        reply = up.request(range_query_frame(TABLE, 9001, 9010, None, None))
        result = result_from_bytes(reply.payload)
        assert client.verify(result).ok
        assert len(result.rows) == 10

    def test_snapshot_alone_never_evicted(self):
        """A cap below one snapshot must not livelock the heal path:
        the snapshot is the minimal heal unit and always stays."""
        central, relay, up, edges = build_tree()
        relay.max_store_bytes = 10  # absurd: under any snapshot
        central.insert(TABLE, (9001, "a", "b"))
        assert tree_sync(central, relay, edges)
        st = relay.store[TABLE]
        assert st.snapshot is not None  # healed, not wedged
        assert st.deltas == []  # but no chain is ever retained
        assert st.retained_bytes() >= len(st.snapshot.payload)

    def test_unbounded_by_default(self):
        central, relay, up, edges = build_tree()
        for key in range(9001, 9011):
            central.insert(TABLE, (key, "a", "b"))
            assert tree_sync(central, relay, edges)
        assert relay.counters["store_evictions"] == 0
        assert len(relay.store[TABLE].deltas) >= 10


class TestCompaction:
    def test_rotation_snapshot_compacts_covered_chain(self):
        """A snapshot whose LSN covers stored deltas drops them, and
        the drop is counted — the chain never holds frames a snapshot
        already subsumes."""
        central, relay, up, edges = build_tree()
        for key in range(9001, 9004):
            central.insert(TABLE, (key, "a", "b"))
        assert tree_sync(central, relay, edges)
        chain = len(relay.store[TABLE].deltas)
        assert chain >= 1

        central.rotate_key()
        cfg = config_to_frame(
            central.edge_config(),
            ack_every=central.ack_every,
            ack_bytes=central.ack_bytes,
        )
        relay.handle_frame(frame_to_bytes(cfg))
        assert tree_sync(central, relay, edges)
        assert relay.counters["compacted_frames"] >= chain
        st = relay.store[TABLE]
        assert st.deltas == []
        assert st.head == st.snapshot.lsn


class TestDropStoreHook:
    def test_drop_store_evicts_and_nacks_diverged(self):
        central, relay, up, edges = build_tree()
        assert relay.drop_store(TABLE) is True
        st = relay.store[TABLE]
        assert st.snapshot is None and st.deltas == [] and st.head == 0
        assert relay.counters["store_evictions"] == 1
        nacks = [frame_from_bytes(b) for b in relay.pending_upstream()]
        assert any(
            not f.ok and f.reason == "diverged" and f.table == TABLE
            for f in nacks
        )

    def test_drop_store_heals_through_ordinary_path(self):
        central, relay, up, edges = build_tree()
        relay.drop_store(TABLE)
        # Write traffic keeps flowing during the fault (as in the chaos
        # storm); the diverged nack escalates the next ship to snapshot.
        central.insert(TABLE, (9050, "a", "b"))
        assert tree_sync(central, relay, edges)
        st = relay.store[TABLE]
        assert st.snapshot is not None
        client = central.make_client()
        reply = up.request(range_query_frame(TABLE, 0, 5, None, None))
        assert client.verify(result_from_bytes(reply.payload)).ok

    def test_drop_store_nothing_to_drop(self):
        relay = RelayServer("relay-0")
        assert relay.drop_store("nope") is False


class TestPlumbing:
    def test_ctor_and_run_relay_accept_cap(self):
        import inspect

        from repro.edge.relay import run_relay

        relay = RelayServer("relay-0", max_store_bytes=12345)
        assert relay.max_store_bytes == 12345
        assert "max_store_bytes" in inspect.signature(run_relay).parameters

    def test_serve_cli_exposes_cap_flag(self):
        import os
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.edge.serve", "--help"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0
        assert "--max-store-bytes" in proc.stdout
