"""Integration tests: secondary VB-trees through the full deployment."""

import pytest

from repro.db.expressions import between
from repro.edge.central import CentralServer
from repro.exceptions import ReplicationError, SchemaError
from repro.workloads.generator import TableSpec, generate_table


@pytest.fixture
def deployment():
    central = CentralServer(db_name="secdb", rsa_bits=512, seed=61)
    from repro.db.schema import Column, TableSchema
    from repro.db.types import IntType

    schema = TableSchema(
        "m",
        (
            Column("id", IntType()),
            Column("temp", IntType()),
            Column("site", IntType()),
        ),
        key="id",
    )
    rows = [(i, (i * 37) % 100, i % 5) for i in range(150)]
    central.create_table(schema, rows, fanout_override=6)
    central.create_secondary_index("m", "temp", fanout_override=6)
    edge = central.spawn_edge_server("sec-edge")
    client = central.make_client()
    return central, edge, client


class TestSecondaryThroughDeployment:
    def test_secondary_query_verifies(self, deployment):
        _central, edge, client = deployment
        resp = edge.secondary_range_query("m", "temp", low=20, high=40)
        assert resp.result.rows
        assert all(20 <= r[1] <= 40 for r in resp.result.rows)
        assert client.verify(resp).ok

    def test_matches_primary_tree_selection(self, deployment):
        _central, edge, client = deployment
        via_secondary = edge.secondary_range_query("m", "temp", low=10, high=30)
        via_primary = edge.select("m", between("temp", 10, 30))
        assert sorted(via_secondary.result.keys) == sorted(via_primary.result.keys)
        assert client.verify(via_secondary).ok
        assert client.verify(via_primary).ok

    def test_secondary_vo_smaller(self, deployment):
        _central, edge, _client = deployment
        via_secondary = edge.secondary_range_query("m", "temp", low=10, high=30)
        via_primary = edge.select("m", between("temp", 10, 30))
        assert (
            via_secondary.result.vo.num_selection_digests
            < via_primary.result.vo.num_selection_digests
        )
        assert via_secondary.wire_bytes < via_primary.wire_bytes

    def test_insert_maintains_secondary(self, deployment):
        central, edge, client = deployment
        central.insert("m", (9000, 25, 1))
        resp = edge.secondary_range_query("m", "temp", low=25, high=25)
        assert 9000 in resp.result.keys
        assert client.verify(resp).ok
        central.vbtrees["m__by_temp"].audit()

    def test_delete_maintains_secondary(self, deployment):
        central, edge, client = deployment
        row = central.tables["m"].get(10)
        central.delete("m", 10)
        resp = edge.secondary_range_query(
            "m", "temp", low=row["temp"], high=row["temp"]
        )
        assert 10 not in resp.result.keys
        assert client.verify(resp).ok
        central.vbtrees["m__by_temp"].audit()

    def test_duplicate_index_rejected(self, deployment):
        central, _edge, _client = deployment
        with pytest.raises(SchemaError):
            central.create_secondary_index("m", "temp")

    def test_missing_index_raises(self, deployment):
        _central, edge, _client = deployment
        with pytest.raises(ReplicationError):
            edge.secondary_range_query("m", "site", low=0, high=1)

    def test_projection_on_secondary(self, deployment):
        _central, edge, client = deployment
        resp = edge.secondary_range_query(
            "m", "temp", low=0, high=50, columns=("id", "temp")
        )
        assert resp.result.columns == ("id", "temp")
        assert client.verify(resp).ok

    def test_key_rotation_rebuilds_secondary(self, deployment):
        central, edge, client = deployment
        central.rotate_key(seed=62)
        resp = edge.secondary_range_query("m", "temp", low=20, high=40)
        assert client.verify(resp).ok
        central.vbtrees["m__by_temp"].audit()
