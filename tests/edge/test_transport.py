"""The message boundary between central and edge (DESIGN.md section 7):
frame codec round-trips, serialized snapshot reconstruction, and the
structural guarantee that edges hold no reference into the trusted
central server."""

import pytest

from repro.core.wire import (
    predicate_from_bytes,
    predicate_to_bytes,
    result_from_bytes,
    snapshot_to_bytes,
)
from repro.db.expressions import AlwaysTrue, And, Comparison, Not, Or
from repro.edge.central import CentralServer
from repro.edge.transport import (
    AckFrame,
    ConfigFrame,
    CursorAckFrame,
    CursorProbeFrame,
    DeltaFrame,
    InProcessTransport,
    QueryRequestFrame,
    QueryResponseFrame,
    SnapshotFrame,
    frame_from_bytes,
    frame_to_bytes,
)
from repro.exceptions import SignatureError, TransportError
from repro.workloads.generator import TableSpec, generate_table

DB = "transportdb"


def make_central(**kwargs):
    server = CentralServer(db_name=DB, rsa_bits=512, seed=31, **kwargs)
    schema, rows = generate_table(TableSpec(name="t", rows=90, columns=4, seed=6))
    server.create_table(schema, rows, fanout_override=6)
    return server


class TestFrameCodec:
    @pytest.mark.parametrize(
        "frame",
        [
            SnapshotFrame(table="t", lsn=7, epoch=2, naive=True, payload=b"abc"),
            DeltaFrame(table="t__by_a1", payload=b"\x00\xff" * 9),
            AckFrame(edge="e1", table="t", ok=False, lsn=3, epoch=1,
                     reason="gap"),
            QueryRequestFrame(kind="range", table="t", low=5, high=90,
                              columns=("id", "a1"), vo_format="flat"),
            QueryRequestFrame(kind="select", table="t",
                              predicate=b"\x01", columns=None),
            QueryRequestFrame(kind="secondary", table="t", attribute="a2",
                              low="aa", high=None),
            QueryResponseFrame(edge="e1", payload=b"result-bytes"),
            QueryResponseFrame(edge="e1", payload=b"r", lsn=12, epoch=1,
                               cursors=(("t", 12, 1), ("t__by_a1", 9, 1))),
            CursorAckFrame(edge="e1"),
            CursorAckFrame(edge="e1",
                           cursors=(("t", 7, 0), ("u", 1234567, 3))),
            CursorProbeFrame(),
            ConfigFrame(db_name="db", policy="flattened", grace=2, clock=9,
                        epochs=((0, 12345, 3, 1, -1),),
                        ack_every=16, ack_bytes=1 << 20),
        ],
    )
    def test_round_trip(self, frame):
        assert frame_from_bytes(frame_to_bytes(frame)) == frame

    def test_empty_and_unknown_frames_rejected(self):
        with pytest.raises(TransportError):
            frame_from_bytes(b"")
        with pytest.raises(TransportError):
            frame_from_bytes(bytes([99]) + b"junk")
        with pytest.raises(TransportError):
            frame_from_bytes(frame_to_bytes(DeltaFrame("t", b"x")) + b"!")

    def test_predicate_round_trip(self):
        predicate = Or(
            And(Comparison("id", ">=", 10), Comparison("a1", "<", "zz")),
            Not(Comparison("id", "=", 4)),
        )
        parsed, offset = predicate_from_bytes(predicate_to_bytes(predicate))
        assert parsed == predicate
        assert offset == len(predicate_to_bytes(predicate))
        assert predicate_from_bytes(predicate_to_bytes(AlwaysTrue()))[0] == AlwaysTrue()


class TestSnapshotReconstruction:
    def test_replica_matches_central_tree(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        central_vbt = server.vbtrees["t"]
        replica = edge.replica("t")
        assert replica is not central_vbt
        assert replica.tree.node_count() == central_vbt.tree.node_count()
        assert replica.tree._next_node_id == central_vbt.tree._next_node_id
        assert len(replica.tree) == len(central_vbt.tree)
        assert [nid for nid, _ in _walk_ids(replica)] == [
            nid for nid, _ in _walk_ids(central_vbt)
        ]
        replica.tree.validate()
        replica.audit()

    def test_secondary_replica_reconstructs(self):
        server = make_central()
        server.create_secondary_index("t", "a1", fanout_override=6)
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        resp = edge.secondary_range_query("t", "a1", low="a", high="zzzz")
        assert client.verify(resp).ok
        edge.replica("t__by_a1").audit()

    def test_round_trip_is_stable(self):
        server = make_central()
        sig_len = server.public_key.signature_len
        payload = snapshot_to_bytes(server.vbtrees["t"], sig_len)
        server2 = server.spawn_edge_server("probe")
        replica = server2.replica("t")
        assert snapshot_to_bytes(replica, sig_len) == payload

    def test_replica_cannot_sign(self):
        """The pre-transport implementation leaked the private signing
        key onto every edge via cloned SigningDigestEngines; replicas
        reconstructed from snapshots are verify-only."""
        server = make_central()
        edge = server.spawn_edge_server("e1")
        replica = edge.replica("t")
        with pytest.raises(SignatureError):
            replica.signing.sign_value(123)
        with pytest.raises(SignatureError):
            replica.signing.signer.sign(123)

    def test_deltas_replay_identically_after_reconstruction(self):
        """Structural mutations on a rebuilt replica must track the
        central tree byte-for-byte (node ids, splits, frees)."""
        server = make_central()
        edge = server.spawn_edge_server("e1")
        for key in range(10_000, 10_080):
            server.insert("t", (key, "x", "y", "z"))
        for key in range(0, 30, 3):
            server.delete("t", key)
        replica = edge.replica("t")
        central_vbt = server.vbtrees["t"]
        replica.tree.validate()
        replica.audit()
        assert replica.tree.node_count() == central_vbt.tree.node_count()
        assert replica.tree._next_node_id == central_vbt.tree._next_node_id


class TestTrustBoundary:
    def test_edge_holds_no_central_reference(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        assert not hasattr(edge, "central")
        for value in vars(edge).values():
            assert not isinstance(value, CentralServer)

    def test_all_replication_traffic_is_frames(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        server.insert("t", (9001, "a", "b", "c"))
        kinds = {t.kind for t in edge.replication_channel.transfers}
        assert kinds == {"snapshot", "delta"}
        transport = server.fanout.peer("e1").transport
        ack_bytes = transport.up_channel.bytes_by_kind()
        assert ack_bytes.get("ack", 0) > 0


class TestQueryOverTransport:
    def _deployment(self):
        server = make_central()
        edge = server.spawn_edge_server("e1")
        client = server.make_client()
        # A dedicated client<->edge link, separate from replication.
        link = InProcessTransport("client-link")
        link.connect(edge.handle_frame)
        return server, edge, client, link

    def test_query_frames_round_trip_and_verify(self):
        _server, _edge, client, link = self._deployment()
        outcome = link.send(
            QueryRequestFrame(kind="range", table="t", low=10, high=40)
        )
        assert outcome.delivered
        (response,) = outcome.replies
        assert isinstance(response, QueryResponseFrame)
        result = result_from_bytes(response.payload)
        assert len(result.rows) == 31
        assert client.verify(result).ok
        assert link.down_channel.bytes_by_kind().get("query", 0) > 0
        assert link.up_channel.bytes_by_kind().get("payload", 0) > 0

    def test_select_predicate_over_frames(self):
        _server, _edge, client, link = self._deployment()
        outcome = link.send(
            QueryRequestFrame(
                kind="select",
                table="t",
                predicate=predicate_to_bytes(Comparison("id", ">=", 80)),
                columns=("id",),
            )
        )
        result = result_from_bytes(outcome.replies[0].payload)
        assert result.columns == ("id",)
        assert all(row[0] >= 80 for row in result.rows)
        assert client.verify(result).ok

    def test_tampered_edge_detected_through_frames(self):
        from repro.edge.adversary import ValueTamper

        _server, edge, client, link = self._deployment()
        ValueTamper(table="t", key=20, column="a1", new_value="evil").apply(edge)
        outcome = link.send(
            QueryRequestFrame(kind="range", table="t", low=15, high=25)
        )
        result = result_from_bytes(outcome.replies[0].payload)
        assert not client.verify(result).ok


def _walk_ids(vbt):
    for node in vbt.tree.walk_nodes():
        yield node.node_id, node.is_leaf
