"""Relay tier over real sockets and processes (``-m socket``).

Two layers of realism:

* :class:`RelayHost` — the relay's actual :func:`run_relay` serve loop
  (upstream dial + downstream listener on one reactor) on a background
  thread, with an :class:`EdgeHost` fleet dialing it over loopback TCP.
* :class:`RelayDeployment` — the full central → k relay *processes* →
  n edge *processes* topology, including the acceptance scenario:
  SIGKILL a relay mid-stream, keep writing and querying (verified,
  with failover), restart it, and watch the whole subtree heal via
  snapshot to cursor parity.
"""

import pytest

from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment, RelayDeployment
from repro.edge.event_loop import EdgeHost
from repro.edge.relay import RelayHost
from repro.exceptions import RouterError, TransportError
from repro.workloads.generator import TableSpec, generate_table

pytestmark = [pytest.mark.socket, pytest.mark.timeout(180)]

DB = "relaydeploydb"
TABLE = "items"


def make_central(rows=120, **kwargs):
    central = CentralServer(DB, rsa_bits=512, seed=61, **kwargs)
    schema, data = generate_table(
        TableSpec(name=TABLE, rows=rows, columns=4, seed=3)
    )
    central.create_table(schema, data, fanout_override=6)
    return central


class TestRelayHost:
    def test_relay_serve_loop_end_to_end(self):
        """One relay serve loop between a real central listener and a
        TCP edge fleet: replication settles through the store-and-
        forward hop, and queries through the relay round-robin over
        its edges, verified end to end."""
        central = make_central()
        deploy = Deployment(central)
        host = None
        try:
            with RelayHost("relay-0", upstream=deploy.address) as relay_host:
                address = relay_host.wait_ready()
                host = EdgeHost(*address)
                host.launch_fleet(["edge-0", "edge-1"])
                deploy.wait_for_edge("relay-0")

                for key in range(9001, 9006):
                    central.insert(TABLE, (key, "a", "b", "c"))
                deploy.sync()
                assert central.staleness("relay-0", TABLE) == 0
                # The relay's own fan-out settled its edges too.
                relay = relay_host.relay
                assert relay.store[TABLE].head > 0
                for name in ("edge-0", "edge-1"):
                    assert relay.fanout.staleness(name, TABLE) == 0

                client = central.make_client()
                answered = set()
                for _ in range(4):
                    resp = deploy.range_query(
                        "relay-0", TABLE, low=9001, high=9005
                    )
                    assert len(resp.result.rows) == 5
                    assert client.verify(resp).ok
                    answered.add(resp.edge_name)
                assert answered == {"edge-0", "edge-1"}
        finally:
            if host is not None:
                host.close()
            deploy.shutdown()


class TestRelayDeployment:
    def test_relay_tree_kill_restart_subtree_heal(self, tmp_path):
        """The acceptance scenario: 1 central × 2 relay processes × 4
        edge processes.  Writes replicate through both relays; queries
        through either relay verify.  SIGKILL relay-0 mid-stream: the
        write path never blocks, the verifying router fails over to
        relay-1, and every answer observed during the outage is
        verified (zero unverified results).  Restart relay-0: it
        re-registers empty, heals via snapshot, its edges re-dial the
        same listen address, and the whole subtree returns to cursor
        parity."""
        central = make_central()
        rd = RelayDeployment(central, log_dir=str(tmp_path / "logs"))
        try:
            for relay in ("relay-0", "relay-1"):
                rd.launch_relay(relay)
            for relay in ("relay-0", "relay-1"):
                rd.wait_for_relay(relay)
            rd.launch_edge("edge-0", "relay-0")
            rd.launch_edge("edge-1", "relay-0")
            rd.launch_edge("edge-2", "relay-1")
            rd.launch_edge("edge-3", "relay-1")
            rd.wait_for_edges("relay-0", ["edge-0", "edge-1"], TABLE)
            rd.wait_for_edges("relay-1", ["edge-2", "edge-3"], TABLE)

            client = central.make_client()
            for key in range(9001, 9006):
                central.insert(TABLE, (key, "a", "b", "c"))
            rd.sync()
            assert central.staleness("relay-0", TABLE) == 0
            assert central.staleness("relay-1", TABLE) == 0
            for relay in ("relay-0", "relay-1"):
                resp = rd.range_query(relay, TABLE, low=9001, high=9005)
                assert len(resp.result.rows) == 5
                assert client.verify(resp).ok

            # --- SIGKILL relay-0: writes keep flowing, queries fail
            # over, and nothing unverified ever reaches the caller.
            verifying = rd.make_router(
                policy="round_robin", failure_threshold=1, cooldown=30.0
            )
            rd.kill_relay("relay-0")
            for key in range(9006, 9011):
                central.insert(TABLE, (key, "x", "y", "z"))
            rd.sync()
            assert central.staleness("relay-1", TABLE) == 0

            unverified = 0
            answers = 0
            for _ in range(6):
                try:
                    resp = verifying.range_query(TABLE, low=9006, high=9010)
                except (RouterError, TransportError):
                    continue  # exhausted mid-cooldown: an error, never
                    # an unverified answer
                answers += 1
                if not resp.verdict.ok:
                    unverified += 1
                assert len(resp.result.rows) == 5
            assert unverified == 0
            assert answers >= 4  # relay-1's subtree carried the outage

            # --- Restart: same listen port, empty store, snapshot
            # heal; the subtree's edges re-dial and settle.
            rd.restart_relay("relay-0")
            rd.wait_for_relay("relay-0")
            rd.wait_for_edges(
                "relay-0", ["edge-0", "edge-1"], TABLE, timeout=60.0
            )
            rd.sync()
            assert central.staleness("relay-0", TABLE) == 0
            resp = rd.range_query("relay-0", TABLE, low=9001, high=9010)
            assert len(resp.result.rows) == 10
            assert client.verify(resp).ok
        finally:
            rd.shutdown()
