"""The benchmark regression gate must pass clean runs and demonstrably
fail perturbed ones (acceptance criterion for the CI pipeline)."""

import importlib.util
import json
import os
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "check_regression.py"
    ),
)
check_regression = importlib.util.module_from_spec(_SPEC)
# dataclass field-type resolution needs the module registered while it
# executes (PEP 563 string annotations).
sys.modules["check_regression"] = check_regression
_SPEC.loader.exec_module(check_regression)


BASE_SERIES = [
    {"mode": "eager", "edges": 1, "replication_bytes": 1000,
     "bytes_per_edge": 1000, "sync_seconds": 0.5},
    {"mode": "eager", "edges": 4, "replication_bytes": 4000,
     "bytes_per_edge": 1000, "sync_seconds": 1.5},
]


def _write(path, series, tolerances=None):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {"series": series}
    if tolerances is not None:
        payload["tolerances"] = tolerances
    with open(path, "w") as fh:
        json.dump(payload, fh)


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = results / "baselines"
    _write(str(baselines / "fanout_scale.json"), BASE_SERIES)
    return str(results), str(baselines)


class TestCompareSeries:
    def test_identical_series_pass(self):
        findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, BASE_SERIES,
            check_regression.CHECKS["fanout_scale"],
        )
        assert not errors
        assert findings and all(f.ok for f in findings)

    def test_within_tolerance_passes(self):
        current = [dict(BASE_SERIES[0], replication_bytes=1050),
                   BASE_SERIES[1]]
        findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
        )
        assert not errors and all(f.ok for f in findings)

    @pytest.mark.parametrize("factor", [1.2, 0.8])
    def test_drift_beyond_tolerance_fails_both_directions(self, factor):
        current = [
            dict(BASE_SERIES[0],
                 replication_bytes=int(1000 * factor)),
            BASE_SERIES[1],
        ]
        findings, _ = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
        )
        bad = [f for f in findings if not f.ok]
        assert len(bad) == 1
        assert bad[0].metric == "replication_bytes"
        assert bad[0].row_key == ("eager", 1)

    def test_timing_fields_are_not_gated(self):
        current = [dict(row, sync_seconds=row["sync_seconds"] * 50)
                   for row in BASE_SERIES]
        findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
        )
        assert not errors and all(f.ok for f in findings)

    def test_missing_row_is_an_error(self):
        findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, BASE_SERIES[:1],
            check_regression.CHECKS["fanout_scale"],
        )
        assert any("missing" in e for e in errors)

    def test_tolerance_override_loosens_one_metric(self):
        """A baseline ``"tolerances"`` entry replaces the default bound
        for that metric only — sibling metrics keep theirs."""
        current = [
            dict(BASE_SERIES[0], replication_bytes=1300,  # +30%
                 bytes_per_edge=1300),
            BASE_SERIES[1],
        ]
        findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
            overrides={"replication_bytes": 0.50},
        )
        assert not errors
        by_metric = {
            f.metric: f for f in findings if f.row_key == ("eager", 1)
        }
        assert by_metric["replication_bytes"].ok
        assert by_metric["replication_bytes"].tolerance == 0.50
        assert not by_metric["bytes_per_edge"].ok
        assert by_metric["bytes_per_edge"].tolerance == 0.10

    def test_override_can_tighten_too(self):
        current = [dict(BASE_SERIES[0], replication_bytes=1050),
                   BASE_SERIES[1]]
        findings, _ = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
            overrides={"replication_bytes": 0.01},
        )
        assert any(
            f.metric == "replication_bytes" and not f.ok for f in findings
        )

    def test_lost_metric_is_an_error(self):
        current = [
            {k: v for k, v in BASE_SERIES[0].items()
             if k != "bytes_per_edge"},
            BASE_SERIES[1],
        ]
        _findings, errors = check_regression.compare_series(
            "fanout_scale", BASE_SERIES, current,
            check_regression.CHECKS["fanout_scale"],
        )
        assert any("bytes_per_edge" in e for e in errors)


class TestRunChecks:
    def test_clean_run_exits_zero(self, dirs, capsys):
        results, baselines = dirs
        _write(os.path.join(results, "fanout_scale.json"), BASE_SERIES)
        assert check_regression.run_checks(results, baselines) == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_perturbed_result_exits_nonzero(self, dirs, capsys):
        results, baselines = dirs
        perturbed = [dict(BASE_SERIES[0], replication_bytes=2000),
                     BASE_SERIES[1]]
        _write(os.path.join(results, "fanout_scale.json"), perturbed)
        assert check_regression.run_checks(results, baselines) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_baseline_tolerances_read_from_disk(self, dirs, capsys):
        """End-to-end: a drift inside the committed override passes;
        the same drift fails once the override is removed."""
        results, baselines = dirs
        perturbed = [dict(BASE_SERIES[0], replication_bytes=1300),
                     BASE_SERIES[1]]
        _write(os.path.join(results, "fanout_scale.json"), perturbed)
        _write(os.path.join(baselines, "fanout_scale.json"), BASE_SERIES,
               tolerances={"replication_bytes": 0.50})
        assert check_regression.run_checks(results, baselines) == 0
        assert "tol ±50%" in capsys.readouterr().out
        _write(os.path.join(baselines, "fanout_scale.json"), BASE_SERIES)
        assert check_regression.run_checks(results, baselines) == 1

    def test_malformed_tolerances_rejected(self, dirs):
        results, baselines = dirs
        _write(os.path.join(results, "fanout_scale.json"), BASE_SERIES)
        _write(os.path.join(baselines, "fanout_scale.json"), BASE_SERIES,
               tolerances={"replication_bytes": -0.2})
        with pytest.raises(ValueError):
            check_regression.run_checks(results, baselines)

    def test_requested_series_without_results_fails(self, dirs, capsys):
        results, baselines = dirs
        assert check_regression.run_checks(
            results, baselines, only=["fanout_scale"]
        ) == 1
        assert "did the bench run" in capsys.readouterr().out

    def test_nothing_checked_fails(self, dirs, capsys):
        results, baselines = dirs  # baselines exist, no results at all
        assert check_regression.run_checks(results, baselines) == 1
        assert "nothing checked" in capsys.readouterr().out

    def test_unknown_series_fails(self, dirs):
        results, baselines = dirs
        assert check_regression.run_checks(
            results, baselines, only=["no_such_series"]
        ) == 1

    def test_committed_baselines_have_a_gate_entry(self):
        committed = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "results",
            "baselines",
        )
        names = [os.path.splitext(f)[0] for f in os.listdir(committed)
                 if f.endswith(".json")]
        assert names, "no baselines committed"
        for name in names:
            assert name in check_regression.CHECKS

    def test_self_test_passes(self, capsys):
        assert check_regression.self_test() == 0
        assert "self-test passed" in capsys.readouterr().out
