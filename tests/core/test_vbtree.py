"""Tests for VB-tree construction, digest storage, and auditing."""

import pytest

from repro.core.digests import DigestPolicy
from repro.core.vbtree import VBTree
from repro.crypto.signatures import DigestVerifier
from repro.db.page import PageGeometry
from repro.db.rows import Row
from repro.exceptions import AuthenticationError, KeyNotFoundError

from tests.core.conftest import build_tree, make_rows


class TestBuild:
    def test_row_count_and_order(self, vbtree):
        keys = [r.key for r in vbtree.rows()]
        assert keys == sorted(keys)
        assert len(vbtree) == len(keys) > 0

    def test_every_row_has_tuple_auth(self, vbtree):
        for row in vbtree.rows():
            auth = vbtree.tuple_auth(row.key)
            assert len(auth.signed_attrs) == len(row.values)

    def test_every_node_has_auth(self, vbtree):
        for node in vbtree.tree.walk_nodes():
            auth = vbtree.node_auth(node)
            assert auth.value > 0

    def test_missing_key_raises(self, vbtree):
        with pytest.raises(KeyNotFoundError):
            vbtree.tuple_auth(99999)

    def test_audit_passes_on_honest_tree(self, vbtree):
        vbtree.audit()

    def test_signatures_verify(self, vbtree, keypair):
        verifier = DigestVerifier(keypair.public)
        root = vbtree.root_auth()
        assert verifier.recover(root.signed) == root.value
        assert verifier.recover(root.signed_display) == root.display

    def test_display_form(self, vbtree):
        root = vbtree.root_auth()
        engine = vbtree.signing.engine
        assert root.display == engine.display_value(root.value)
        if vbtree.policy is DigestPolicy.NESTED:
            assert root.display == root.value
            assert root.signed_display == root.signed

    def test_geometry_uses_signature_width(self, vbtree, keypair):
        expected_digest_len = keypair.public.signature_len + 2
        assert vbtree.geometry.digest_len == expected_digest_len

    def test_vbtree_fanout_below_plain_btree(self, vbtree):
        plain = vbtree.geometry.without_digests()
        assert vbtree.geometry.internal_fanout() < plain.internal_fanout()


class TestNodeDigestStructure:
    def test_leaf_value_is_combination_of_tuples(self, vbtree):
        engine = vbtree.signing.engine
        leaf = vbtree.tree.first_leaf()
        expected = engine.node_value(
            [vbtree.tuple_auth(k).digests.tuple_value for k in leaf.keys]
        )
        assert vbtree.node_auth(leaf).value == expected

    def test_internal_value_is_combination_of_children(self, vbtree):
        engine = vbtree.signing.engine
        root = vbtree.tree.root
        if root.is_leaf:
            pytest.skip("tree too small")
        expected = engine.node_value(
            [vbtree.node_auth(c).value for c in root.children]
        )
        assert vbtree.node_auth(root).value == expected

    def test_flattened_root_is_product_of_all_tuples(self, schema, keypair):
        """FLATTENED: the root exponent is the product of every tuple
        digest in the table — the flattening property that makes the
        paper's set-only VO work."""
        vbt = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=40)
        engine = vbt.signing.engine
        modulus = engine.commutative.modulus
        product = 1
        for row in vbt.rows():
            product = (
                product * vbt.tuple_auth(row.key).digests.tuple_value
            ) % modulus
        assert vbt.root_auth().value == product

    def test_nested_root_differs_from_flat_product(self, schema, keypair):
        vbt = build_tree(schema, keypair, DigestPolicy.NESTED, n=40)
        engine = vbt.signing.engine
        modulus = engine.commutative.modulus
        product = 1
        for row in vbt.rows():
            product = (
                product * vbt.tuple_auth(row.key).digests.tuple_value
            ) % modulus
        if not vbt.tree.root.is_leaf:
            assert vbt.root_auth().value != product


class TestAudit:
    def test_audit_detects_tampered_row(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=30)
        # Tamper with a stored row without updating digests.
        leaf = vbt.tree.first_leaf()
        row = leaf.values[0]
        leaf.values[0] = Row(schema, (row.key, "EVIL", 0, 0))
        with pytest.raises(AuthenticationError):
            vbt.audit()

    def test_audit_detects_tampered_node_digest(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=30)
        root_auth = vbt.root_auth()
        root_auth.value ^= 1
        with pytest.raises(AuthenticationError):
            vbt.audit()

    def test_recompute_all_restores_audit(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=30)
        vbt.root_auth().value ^= 1
        vbt.recompute_all_nodes()
        vbt.audit()


class TestRawMutation:
    def test_raw_insert_stores_tuple_auth(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=20)
        row = Row(schema, (1001, "new", 5, 5))
        trace, auth = vbt.raw_insert(row)
        assert vbt.tuple_auth(1001) is auth
        assert trace.modified

    def test_raw_delete_removes_tuple_auth(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=20)
        key = next(iter(vbt.rows())).key
        vbt.raw_delete(key)
        with pytest.raises(KeyNotFoundError):
            vbt.tuple_auth(key)

    def test_recompute_dirty_after_insert(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=50)
        row = Row(schema, (1001, "new", 5, 5))
        trace, _ = vbt.raw_insert(row)
        vbt.recompute_dirty(trace)
        vbt.audit()

    def test_recompute_dirty_after_delete(self, schema, keypair, policy):
        vbt = build_tree(schema, keypair, policy, n=50)
        keys = [r.key for r in vbt.rows()][:10]
        for key in keys:
            trace, _ = vbt.raw_delete(key)
            vbt.recompute_dirty(trace)
        vbt.audit()
