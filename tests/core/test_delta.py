"""Tests for replica deltas: emission, wire round-trip, apply, coalesce."""

import pytest

from repro.core.delta import (
    DeltaOpKind,
    ReplicaDelta,
    TupleOp,
    apply_delta,
    coalesce,
    delta_digest,
)
from repro.core.digests import DigestPolicy
from repro.core.update import AuthenticatedUpdater
from repro.core.wire import delta_body_bytes, delta_from_bytes, delta_to_bytes
from repro.crypto.signatures import DigestSigner, DigestVerifier, SignedDigest
from repro.db.rows import Row
from repro.exceptions import ReplicaDeltaError

from tests.core.conftest import build_tree, make_rows


@pytest.fixture
def tree(schema, keypair, policy):
    return build_tree(schema, keypair, policy, fanout=4, n=60)


@pytest.fixture
def updater(tree):
    return AuthenticatedUpdater(tree)


def make_row(schema, key):
    return Row(schema, (key, f"item-{key}", (key * 7) % 100, (key * 3) % 50))


def sign(delta, keypair, sig_len):
    from dataclasses import replace

    signer = DigestSigner.from_keypair(keypair)
    body = delta_body_bytes(delta, sig_len)
    return replace(delta, signature=signer.sign(delta_digest(body)))


class TestEmission:
    def test_insert_emits_delta_covering_path(self, tree, updater, schema):
        updater.insert(make_row(schema, 1001))
        delta = updater.take_delta()
        assert delta is not None
        assert delta.table == tree.table_name
        assert delta.base_version == tree.version - 1
        assert delta.new_version == tree.version
        assert len(delta.ops) == 1
        assert delta.ops[0].kind is DeltaOpKind.INSERT
        # The root's digest changes on every mutation, so the root must
        # always be among the node updates.
        root_id = tree.tree.root.node_id
        assert root_id in {u.node_id for u in delta.node_updates}
        # Node updates match the tree's current (signed) digest state.
        for update in delta.node_updates:
            assert tree._node_auth[update.node_id].value == update.value

    def test_take_delta_pops(self, updater, schema):
        updater.insert(make_row(schema, 1003))
        assert updater.take_delta() is not None
        assert updater.take_delta() is None

    def test_delete_emits_delta(self, tree, updater):
        updater.delete(10)
        delta = updater.take_delta()
        assert delta.ops[0].kind is DeltaOpKind.DELETE
        assert delta.ops[0].key == 10

    def test_structural_insert_marks_structural(self, tree, updater, schema):
        # fanout 4: enough consecutive inserts force a split somewhere.
        structural = []
        for key in range(2001, 2031):
            updater.insert(make_row(schema, key))
            structural.append(updater.take_delta().structural)
        assert any(structural)

    def test_delete_to_empty_records_freed_nodes(self, schema, keypair, policy):
        small = build_tree(schema, keypair, policy, fanout=4, n=8)
        upd = AuthenticatedUpdater(small)
        freed = []
        for row in list(small.rows()):
            upd.delete(row.key)
            freed.extend(upd.take_delta().freed_nodes)
        assert freed  # lazy deletes eventually empty nodes


class TestWireRoundTrip:
    def test_round_trip_insert(self, tree, updater, schema, keypair):
        sig_len = keypair.public.signature_len
        updater.insert(make_row(schema, 1001))
        delta = sign(updater.take_delta(), keypair, sig_len)
        payload = delta_to_bytes(delta, sig_len)
        parsed = delta_from_bytes(payload)
        assert parsed == delta
        # Canonical: re-serializing the parsed body reproduces the bytes
        # the signature was computed over.
        assert delta_body_bytes(parsed, sig_len) == delta_body_bytes(
            delta, sig_len
        )

    def test_round_trip_delete_composite_key(self, tree, updater, keypair):
        from dataclasses import replace

        sig_len = keypair.public.signature_len
        updater.delete(10)
        delta = updater.take_delta()
        # Secondary VB-trees delete by composite (attribute, key) tuples.
        composite = replace(
            delta, ops=(TupleOp.delete((7, "x", 10)),)
        )
        composite = sign(composite, keypair, sig_len)
        parsed = delta_from_bytes(delta_to_bytes(composite, sig_len))
        assert parsed.ops[0].key == (7, "x", 10)

    def test_unsigned_delta_refuses_to_serialize(self, updater, schema, keypair):
        updater.insert(make_row(schema, 1001))
        with pytest.raises(ReplicaDeltaError):
            delta_to_bytes(updater.take_delta(), keypair.public.signature_len)

    def test_signature_verifies_over_body(self, updater, schema, keypair):
        sig_len = keypair.public.signature_len
        updater.insert(make_row(schema, 1001))
        delta = sign(updater.take_delta(), keypair, sig_len)
        verifier = DigestVerifier(keypair.public)
        body = delta_body_bytes(delta, sig_len)
        assert verifier.verify_value(delta.signature, delta_digest(body))


class TestApply:
    def test_apply_tracks_central(self, tree, updater, schema):
        replica = tree.clone()
        deltas = []
        for key in (1001, 1003, 1005):
            updater.insert(make_row(schema, key))
            deltas.append(updater.take_delta())
        updater.delete(10)
        deltas.append(updater.take_delta())
        for delta in deltas:
            apply_delta(replica, delta)
        assert replica.version == tree.version
        assert [r.key for r in replica.rows()] == [r.key for r in tree.rows()]
        replica.audit()  # digests on the replica are the signed originals

    def test_apply_replays_structural_changes(self, tree, updater, schema):
        replica = tree.clone()
        for key in range(3001, 3061):  # forces splits at fanout 4
            updater.insert(make_row(schema, key))
            apply_delta(replica, updater.take_delta())
        replica.tree.validate()
        replica.audit()
        assert replica.tree.node_count() == tree.tree.node_count()

    def test_apply_wrong_version_rejected(self, tree, updater, schema):
        replica = tree.clone()
        updater.insert(make_row(schema, 1001))
        first = updater.take_delta()
        updater.insert(make_row(schema, 1003))
        second = updater.take_delta()
        with pytest.raises(ReplicaDeltaError):
            apply_delta(replica, second)  # skipped `first`
        apply_delta(replica, first)
        apply_delta(replica, second)
        replica.audit()

    def test_apply_twice_rejected(self, tree, updater, schema):
        replica = tree.clone()
        updater.insert(make_row(schema, 1001))
        delta = updater.take_delta()
        apply_delta(replica, delta)
        with pytest.raises(ReplicaDeltaError):
            apply_delta(replica, delta)


class TestCoalesce:
    def _seq(self, updater, schema, keys, lsn_start=1):
        from dataclasses import replace

        deltas = []
        for i, key in enumerate(keys):
            updater.insert(make_row(schema, key))
            deltas.append(
                replace(
                    updater.take_delta(),
                    lsn_first=lsn_start + i,
                    lsn_last=lsn_start + i,
                )
            )
        return deltas

    def test_coalesced_apply_equals_sequential(self, tree, updater, schema):
        sequential = tree.clone()
        batched = tree.clone()
        deltas = self._seq(updater, schema, range(4001, 4041))
        for delta in deltas:
            apply_delta(sequential, delta)
        batch = coalesce(deltas)
        assert batch.lsn_first == 1 and batch.lsn_last == 40
        apply_delta(batched, batch)
        batched.audit()
        assert [r.key for r in batched.rows()] == [
            r.key for r in sequential.rows()
        ]
        assert batched.version == sequential.version

    def test_coalesce_drops_superseded_node_digests(
        self, tree, updater, schema
    ):
        deltas = self._seq(updater, schema, (5001, 5003, 5005))
        total = sum(len(d.node_updates) for d in deltas)
        batch = coalesce(deltas)
        # Root (at least) was re-signed by every mutation; only the last
        # signature survives the batch.
        assert len(batch.node_updates) < total

    def test_coalesce_rejects_gap(self, tree, updater, schema):
        deltas = self._seq(updater, schema, (6001, 6003))
        with pytest.raises(ReplicaDeltaError):
            coalesce([deltas[0], deltas[1], deltas[1]])

    def test_coalesce_rejects_empty(self):
        with pytest.raises(ReplicaDeltaError):
            coalesce([])
