"""Tests for secondary VB-trees (sort orders beyond the primary key)."""

import pytest

from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.query_auth import QueryAuthenticator
from repro.core.secondary import (
    MAX_KEY,
    MIN_KEY,
    SecondaryQueryAuthenticator,
    SecondaryVBTree,
)
from repro.core.verify import ResultVerifier
from repro.crypto.signatures import DigestSigner
from repro.db.expressions import Comparison, between
from repro.exceptions import SchemaError

from tests.core.conftest import DB_NAME, build_tree, make_rows


@pytest.fixture(scope="module")
def signing(schema, keypair):
    engine = DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED)
    return SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))


@pytest.fixture(scope="module")
def rows(schema):
    return make_rows(schema, n=150)


@pytest.fixture(scope="module")
def price_tree(schema, rows, signing):
    return SecondaryVBTree.build_on(
        schema, "price", rows, signing, fanout_override=5
    )


@pytest.fixture(scope="module")
def price_auth(price_tree):
    return SecondaryQueryAuthenticator(price_tree)


@pytest.fixture
def flat_verifier(keypair):
    return ResultVerifier(
        DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED),
        public_key=keypair.public,
    )


class TestSentinels:
    def test_min_below_everything(self):
        assert MIN_KEY < 0
        assert MIN_KEY < "a"
        assert not (MIN_KEY > 5)
        assert 3 > MIN_KEY

    def test_max_above_everything(self):
        assert MAX_KEY > 10**18
        assert MAX_KEY > "zzz"
        assert 5 < MAX_KEY

    def test_ordering_between_sentinels(self):
        assert MIN_KEY < MAX_KEY
        assert MIN_KEY == MIN_KEY
        assert MIN_KEY != MAX_KEY

    def test_composite_tuple_comparisons(self):
        assert (5, MIN_KEY) < (5, 0) < (5, MAX_KEY) < (6, MIN_KEY)


class TestConstruction:
    def test_sorted_by_attribute(self, price_tree):
        prices = [row["price"] for row in price_tree.rows()]
        assert prices == sorted(prices)

    def test_duplicate_attr_values_kept(self, price_tree, rows):
        assert len(price_tree) == len(rows)

    def test_audit_passes(self, price_tree):
        price_tree.audit()

    def test_rejects_blob_attribute(self, signing):
        from repro.db.schema import Column, TableSchema
        from repro.db.types import BlobType, IntType

        schema = TableSchema(
            "t", (Column("id", IntType()), Column("b", BlobType())), key="id"
        )
        with pytest.raises(SchemaError):
            SecondaryVBTree(schema, "b", signing)

    def test_rejects_primary_key(self, schema, signing):
        with pytest.raises(SchemaError):
            SecondaryVBTree(schema, "id", signing)

    def test_key_len_is_composite(self, price_tree, schema):
        expected = (
            schema.column("price").type.byte_width()
            + schema.key_type.byte_width()
        )
        assert price_tree.geometry.key_len == expected

    def test_authenticator_requires_secondary(self, schema, keypair):
        primary = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=20)
        with pytest.raises(SchemaError):
            SecondaryQueryAuthenticator(primary)


class TestQueries:
    def test_attribute_range_verifies(self, price_auth, flat_verifier):
        result = price_auth.range_query(low=10, high=40)
        assert result.rows
        assert all(10 <= row[2] <= 40 for row in result.rows)  # price col
        assert flat_verifier.verify(result).ok

    def test_equality_with_duplicates_verifies(self, price_auth, flat_verifier, rows):
        target = rows[0]["price"]
        result = price_auth.range_query(low=target, high=target)
        expected = sum(1 for r in rows if r["price"] == target)
        assert len(result.rows) == expected >= 1
        assert flat_verifier.verify(result).ok

    def test_projection_verifies(self, price_auth, flat_verifier):
        result = price_auth.range_query(low=0, high=50, columns=("id", "price"))
        assert flat_verifier.verify(result).ok

    def test_open_ranges(self, price_auth, flat_verifier, rows):
        everything = price_auth.range_query()
        assert len(everything.rows) == len(rows)
        assert flat_verifier.verify(everything).ok

    def test_empty_range_verifies(self, price_auth, flat_verifier):
        result = price_auth.range_query(low=1000, high=2000)
        assert result.rows == []
        assert flat_verifier.verify(result).ok

    def test_tamper_detected(self, price_auth, flat_verifier):
        result = price_auth.range_query(low=10, high=40)
        row = list(result.rows[0])
        row[1] = row[1] + "!"
        result.rows[0] = tuple(row)
        assert not flat_verifier.verify(result).ok


class TestVOSizeBenefit:
    def test_contiguous_envelope_beats_gappy_primary(
        self, schema, keypair, rows, signing, price_auth
    ):
        """The point of a secondary sort order: the same non-key
        selection costs far fewer D_S digests than scanning the primary
        tree with gaps."""
        primary = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=150)
        primary_auth = QueryAuthenticator(primary)

        predicate = between("price", 20, 50)
        via_primary = primary_auth.select(predicate)
        via_secondary = price_auth.range_query(low=20, high=50)

        assert sorted(via_primary.keys) == sorted(via_secondary.keys)
        assert (
            via_secondary.vo.num_selection_digests
            < via_primary.vo.num_selection_digests
        )

    def test_secondary_results_match_filter(self, price_auth, rows):
        result = price_auth.range_query(low=33, high=66)
        expected = sorted(
            (r["price"], r.key) for r in rows if 33 <= r["price"] <= 66
        )
        got = sorted((row[2], key) for row, key in zip(result.rows, result.keys, strict=True))
        assert got == expected
