"""Tests for the wire format and byte accounting."""

import pytest

from repro.core.query_auth import QueryAuthenticator
from repro.core.vo import VOFormat
from repro.core.wire import result_from_bytes, result_to_bytes, wire_breakdown
from repro.db.expressions import Comparison
from repro.exceptions import VOFormatError

from tests.core.conftest import build_tree
from repro.core.digests import DigestPolicy


@pytest.fixture
def sig_len(keypair):
    return keypair.public.signature_len


class TestRoundtrip:
    def _roundtrip(self, result, sig_len):
        data = result_to_bytes(result, sig_len)
        parsed = result_from_bytes(data)
        assert parsed.table == result.table
        assert parsed.columns == result.columns
        assert parsed.all_columns == result.all_columns
        assert parsed.rows == result.rows
        assert parsed.keys == result.keys
        assert parsed.vo.format == result.vo.format
        assert parsed.vo.policy == result.vo.policy
        assert parsed.vo.top_signed == result.vo.top_signed
        assert parsed.vo.selection_entries == result.vo.selection_entries
        assert parsed.vo.projection_entries == result.vo.projection_entries
        assert parsed.vo.result_positions == result.vo.result_positions
        return data

    def test_range_query_roundtrip(self, authenticator, sig_len):
        result = authenticator.range_query(low=10, high=90)
        self._roundtrip(result, sig_len)

    def test_projection_roundtrip(self, authenticator, sig_len):
        result = authenticator.range_query(low=10, high=60, columns=("id", "name"))
        self._roundtrip(result, sig_len)

    def test_gappy_selection_roundtrip(self, authenticator, sig_len):
        result = authenticator.select(Comparison("price", "<", 40))
        self._roundtrip(result, sig_len)

    def test_empty_result_roundtrip(self, authenticator, sig_len):
        result = authenticator.range_query(low=21, high=21)
        self._roundtrip(result, sig_len)

    def test_parsed_result_still_verifies(self, authenticator, verifier, sig_len):
        result = authenticator.range_query(low=0, high=100, columns=("id", "price"))
        parsed = result_from_bytes(result_to_bytes(result, sig_len))
        assert verifier.verify(parsed).ok

    def test_trailing_garbage_rejected(self, authenticator, sig_len):
        data = result_to_bytes(authenticator.range_query(low=0, high=10), sig_len)
        with pytest.raises(VOFormatError):
            result_from_bytes(data + b"\x00")


class TestByteAccounting:
    def test_breakdown_sums_to_total(self, authenticator, sig_len):
        result = authenticator.range_query(low=0, high=150, columns=("id", "name"))
        b = wire_breakdown(result, sig_len)
        parts = (
            b["data"] + b["keys"] + b["dn"] + b["ds"] + b["dp"]
            + b["structure"] + b["header"]
        )
        assert parts == b["total"]
        assert b["total"] == len(result_to_bytes(result, sig_len))

    def test_vo_grows_linearly_with_projection(self, authenticator, sig_len):
        full = authenticator.range_query(low=0, high=100)
        projected = authenticator.range_query(low=0, high=100, columns=("id",))
        b_full = wire_breakdown(full, sig_len)
        b_proj = wire_breakdown(projected, sig_len)
        assert b_proj["dp"] > 0
        assert b_full["dp"] == 0
        # Projection trades data bytes for digest bytes.
        assert b_proj["data"] < b_full["data"]

    def test_flat_smaller_than_structured(self, schema, keypair, sig_len):
        """The paper's set-only encoding is never larger than the
        position-tagged one."""
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=80)
        auth = QueryAuthenticator(tree)
        flat = auth.range_query(low=0, high=100, vo_format=VOFormat.FLAT_SET)
        structured = auth.range_query(
            low=0, high=100, vo_format=VOFormat.STRUCTURED
        )
        assert len(result_to_bytes(flat, sig_len)) <= len(
            result_to_bytes(structured, sig_len)
        )

    def test_vo_bytes_independent_of_table_size(self, schema, keypair, sig_len):
        small = build_tree(schema, keypair, DigestPolicy.FLATTENED, fanout=5, n=100)
        large = build_tree(schema, keypair, DigestPolicy.FLATTENED, fanout=5, n=800)
        r_small = QueryAuthenticator(small).range_query(low=20, high=60)
        r_large = QueryAuthenticator(large).range_query(low=20, high=60)
        b_small = wire_breakdown(r_small, sig_len)
        b_large = wire_breakdown(r_large, sig_len)
        vo_small = b_small["dn"] + b_small["ds"] + b_small["dp"]
        vo_large = b_large["dn"] + b_large["ds"] + b_large["dp"]
        # Same result rows; VO digest bytes within a small constant factor.
        assert vo_large <= 3 * vo_small
