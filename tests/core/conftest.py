"""Shared fixtures for the VB-tree core tests."""

import pytest

from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.query_auth import QueryAuthenticator
from repro.core.vbtree import VBTree
from repro.core.verify import ResultVerifier
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType

DB_NAME = "testdb"
N_ROWS = 200


@pytest.fixture(scope="session")
def keypair():
    return generate_keypair(bits=512, seed=31337)


@pytest.fixture(scope="session")
def schema():
    return TableSchema(
        "items",
        (
            Column("id", IntType()),
            Column("name", VarcharType(capacity=24)),
            Column("price", IntType()),
            Column("stock", IntType()),
        ),
        key="id",
    )


def make_rows(schema, n=N_ROWS, start=0, step=2):
    """Deterministic rows with even keys (odd keys = guaranteed gaps)."""
    return [
        Row(schema, (k, f"item-{k}", (k * 7) % 100, (k * 3) % 50))
        for k in range(start, start + n * step, step)
    ]


def build_tree(schema, keypair, policy, fanout=5, n=N_ROWS):
    signer = DigestSigner.from_keypair(keypair)
    engine = DigestEngine(DB_NAME, policy=policy)
    signing = SigningDigestEngine(engine, signer)
    return VBTree.build(
        schema, make_rows(schema, n=n), signing, fanout_override=fanout
    )


@pytest.fixture(scope="session", params=[DigestPolicy.FLATTENED, DigestPolicy.NESTED])
def policy(request):
    return request.param


@pytest.fixture(scope="session")
def vbtree(schema, keypair, policy):
    return build_tree(schema, keypair, policy)


@pytest.fixture(scope="session")
def authenticator(vbtree):
    return QueryAuthenticator(vbtree)


@pytest.fixture
def verifier(keypair, policy):
    engine = DigestEngine(DB_NAME, policy=policy)
    return ResultVerifier(engine, public_key=keypair.public)
