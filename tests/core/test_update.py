"""Tests for authenticated updates (Section 3.4): digest maintenance,
locking protocol, and query consistency across updates."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digests import DigestEngine, DigestPolicy
from repro.core.query_auth import QueryAuthenticator
from repro.core.update import AuthenticatedUpdater, digest_resource
from repro.core.verify import ResultVerifier
from repro.db.locks import LockMode
from repro.db.rows import Row
from repro.db.transactions import TransactionManager
from repro.exceptions import DuplicateKeyError, LockError

from tests.core.conftest import DB_NAME, build_tree, make_rows


@pytest.fixture
def fresh_tree(schema, keypair, policy):
    return build_tree(schema, keypair, policy, fanout=4, n=60)


@pytest.fixture
def updater(fresh_tree):
    return AuthenticatedUpdater(fresh_tree)


def make_row(schema, key):
    return Row(schema, (key, f"item-{key}", (key * 7) % 100, (key * 3) % 50))


class TestInsert:
    def test_insert_maintains_audit(self, fresh_tree, updater, schema):
        updater.insert(make_row(schema, 1001))
        fresh_tree.audit()
        assert fresh_tree.get_row(1001)["name"] == "item-1001"

    def test_insert_within_gaps(self, fresh_tree, updater, schema):
        # Odd keys slot between the existing even keys (no split needed
        # until capacity, exercising the paper's fold path).
        for key in (1, 3, 5, 7):
            updater.insert(make_row(schema, key))
        fresh_tree.audit()

    def test_many_inserts_with_splits(self, fresh_tree, updater, schema):
        for key in range(1001, 1101):
            updater.insert(make_row(schema, key))
        fresh_tree.audit()
        fresh_tree.tree.validate()

    def test_duplicate_insert_rejected(self, fresh_tree, updater, schema):
        with pytest.raises(DuplicateKeyError):
            updater.insert(make_row(schema, 0))

    def test_version_bumps(self, fresh_tree, updater, schema):
        v0 = fresh_tree.version
        updater.insert(make_row(schema, 2001))
        assert fresh_tree.version == v0 + 1

    def test_queries_verify_after_inserts(self, fresh_tree, updater, schema, keypair):
        for key in range(901, 951, 2):
            updater.insert(make_row(schema, key))
        auth = QueryAuthenticator(fresh_tree)
        verifier = ResultVerifier(
            DigestEngine(DB_NAME, policy=fresh_tree.policy),
            public_key=keypair.public,
        )
        result = auth.range_query(low=890, high=960)
        assert verifier.verify(result).ok


class TestDelete:
    def test_delete_maintains_audit(self, fresh_tree, updater):
        updater.delete(10)
        fresh_tree.audit()

    def test_delete_many_with_node_removal(self, fresh_tree, updater):
        keys = [r.key for r in fresh_tree.rows()][:40]
        for key in keys:
            updater.delete(key)
        fresh_tree.audit()
        fresh_tree.tree.validate()

    def test_delete_range(self, fresh_tree, updater):
        removed = updater.delete_range(20, 60)
        assert [r.key for r in removed] == list(range(20, 61, 2))
        fresh_tree.audit()

    def test_queries_verify_after_deletes(self, fresh_tree, updater, keypair):
        updater.delete_range(30, 50)
        auth = QueryAuthenticator(fresh_tree)
        verifier = ResultVerifier(
            DigestEngine(DB_NAME, policy=fresh_tree.policy),
            public_key=keypair.public,
        )
        result = auth.range_query(low=0, high=118)
        assert verifier.verify(result).ok
        assert all(not (30 <= k <= 50) for k in result.keys)


class TestInterleavedUpdates:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 200)), max_size=40))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_update_sequences_keep_digests_valid(
        self, schema, keypair, ops
    ):
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, fanout=4, n=30)
        updater = AuthenticatedUpdater(tree)
        present = {r.key for r in tree.rows()}
        for is_insert, key in ops:
            if is_insert and key not in present:
                updater.insert(make_row(schema, key))
                present.add(key)
            elif not is_insert and key in present:
                updater.delete(key)
                present.discard(key)
        tree.audit()
        assert {r.key for r in tree.rows()} == present


class TestLockingProtocol:
    def test_insert_short_locks_released(self, fresh_tree, schema):
        tm = TransactionManager()
        updater = AuthenticatedUpdater(fresh_tree, short_insert_locks=True)
        txn = tm.begin()
        updater.insert(make_row(schema, 3001), txn=txn)
        # Paper behaviour: digest locks already released before commit.
        assert all(
            res[0] != "digest" for res in tm.locks.held_by(txn.txn_id)
        )
        txn.commit()

    def test_insert_strict_locks_held(self, fresh_tree, schema):
        tm = TransactionManager()
        updater = AuthenticatedUpdater(fresh_tree, short_insert_locks=False)
        txn = tm.begin()
        updater.insert(make_row(schema, 3001), txn=txn)
        digest_locks = [
            res for res in tm.locks.held_by(txn.txn_id) if res[0] == "digest"
        ]
        assert digest_locks
        txn.commit()
        assert tm.locks.held_by(txn.txn_id) == set()

    def test_delete_xlocks_path(self, fresh_tree):
        tm = TransactionManager()
        updater = AuthenticatedUpdater(fresh_tree)
        txn = tm.begin()
        updater.delete(10, txn=txn)
        digest_locks = [
            res for res in tm.locks.held_by(txn.txn_id) if res[0] == "digest"
        ]
        assert len(digest_locks) >= fresh_tree.height() - 1
        txn.commit()

    def test_query_blocked_by_overlapping_delete(self, fresh_tree):
        """A reader whose envelope overlaps an in-flight delete's path
        cannot proceed (Section 3.4's consistency guarantee)."""
        tm = TransactionManager()
        updater = AuthenticatedUpdater(fresh_tree)
        writer = tm.begin()
        updater.delete(10, txn=writer)  # holds X-locks on the path
        reader = tm.begin()
        auth = QueryAuthenticator(fresh_tree)
        with pytest.raises(LockError):
            auth.range_query(low=0, high=20, txn=reader)
        writer.commit()
        reader2 = tm.begin()
        result = auth.range_query(low=0, high=20, txn=reader2)
        assert result.rows  # proceeds after commit
        reader2.commit()

    def test_disjoint_query_proceeds_during_delete(self, fresh_tree):
        """A reader on a disjoint envelope is NOT blocked — the benefit
        the paper claims over root-signature schemes."""
        tm = TransactionManager()
        updater = AuthenticatedUpdater(fresh_tree)
        writer = tm.begin()
        updater.delete(0, txn=writer)  # locks leftmost path
        reader = tm.begin()
        auth = QueryAuthenticator(fresh_tree)
        # The rightmost few keys live in a different subtree for fanout=4.
        keys = [r.key for r in fresh_tree.rows()]
        result = auth.range_query(low=keys[-2], high=keys[-1], txn=reader)
        assert len(result.rows) == 2
        writer.commit()
        reader.commit()

    def test_digest_resource_shape(self):
        assert digest_resource("t", 5) == ("digest", "t", 5)
