"""Property matrix: verification must hold across the full cross
product of (digest policy x VO format x projection x range shape),
including after update churn."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digests import DigestEngine, DigestPolicy
from repro.core.query_auth import QueryAuthenticator
from repro.core.update import AuthenticatedUpdater
from repro.core.verify import ResultVerifier
from repro.core.vo import VOFormat
from repro.db.rows import Row

from tests.core.conftest import DB_NAME, build_tree

COLUMNS = ("id", "name", "price", "stock")

projections = st.one_of(
    st.none(),
    st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=4, unique=True).map(
        tuple
    ),
)


@pytest.fixture(scope="module", params=[DigestPolicy.FLATTENED, DigestPolicy.NESTED])
def matrix_setup(request, schema, keypair):
    policy = request.param
    tree = build_tree(schema, keypair, policy, fanout=4, n=120)
    verifier = ResultVerifier(
        DigestEngine(DB_NAME, policy=policy), public_key=keypair.public
    )
    return tree, QueryAuthenticator(tree), verifier, policy


class TestVerificationMatrix:
    @given(
        st.integers(min_value=-5, max_value=245),
        st.integers(min_value=0, max_value=250),
        projections,
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_every_combination_verifies(self, matrix_setup, a, b, cols):
        tree, auth, verifier, policy = matrix_setup
        low, high = min(a, b), max(a, b)
        formats = [VOFormat.STRUCTURED]
        if policy is DigestPolicy.FLATTENED:
            formats.append(VOFormat.FLAT_SET)
        for fmt in formats:
            result = auth.range_query(
                low=low, high=high, columns=cols, vo_format=fmt
            )
            verdict = verifier.verify(result)
            assert verdict.ok, (
                f"policy={policy} fmt={fmt} range=[{low},{high}] "
                f"cols={cols}: {verdict.reason}"
            )
            # Result correctness, not just verifiability:
            expected_keys = [k for k in range(0, 240, 2) if low <= k <= high]
            assert result.keys == expected_keys

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 300)),
            min_size=1,
            max_size=25,
        ),
        st.integers(min_value=0, max_value=280),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_verification_survives_update_churn(
        self, schema, keypair, ops, probe
    ):
        """Apply a random insert/delete sequence, then every probe query
        must still verify and reflect exactly the surviving keys."""
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, fanout=4, n=40)
        updater = AuthenticatedUpdater(tree)
        present = {r.key for r in tree.rows()}
        for is_insert, key in ops:
            if is_insert and key not in present:
                updater.insert(
                    Row(schema, (key, f"item-{key}", key % 100, key % 50))
                )
                present.add(key)
            elif not is_insert and key in present:
                updater.delete(key)
                present.discard(key)
        auth = QueryAuthenticator(tree)
        verifier = ResultVerifier(
            DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED),
            public_key=keypair.public,
        )
        result = auth.range_query(low=probe, high=probe + 60)
        assert verifier.verify(result).ok
        assert result.keys == sorted(
            k for k in present if probe <= k <= probe + 60
        )
