"""End-to-end tests: edge-side VO construction + client-side verification.

These are the paper's Lemma 1 / Lemma 2 correctness claims plus the
adversarial side: honest results always verify; tampered values,
spurious tuples, and misassembled VOs never do.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digests import DigestEngine, DigestPolicy
from repro.core.query_auth import QueryAuthenticator
from repro.core.verify import ResultVerifier
from repro.core.vo import VOFormat
from repro.db.expressions import Comparison, between
from repro.exceptions import VOFormatError

from tests.core.conftest import DB_NAME, build_tree


class TestHonestSelection:
    def test_full_scan_verifies(self, authenticator, verifier):
        result = authenticator.range_query()
        verdict = verifier.verify(result)
        assert verdict.ok, verdict.reason
        assert verdict.rows_checked == len(result.rows)

    def test_point_query_verifies(self, authenticator, verifier):
        result = authenticator.range_query(low=20, high=20)
        assert len(result.rows) == 1
        assert verifier.verify(result).ok

    @pytest.mark.parametrize(
        "low,high",
        [(0, 30), (10, 11), (100, 250), (398, 398), (0, 398), (37, 111)],
    )
    def test_ranges_verify(self, authenticator, verifier, low, high):
        result = authenticator.range_query(low=low, high=high)
        verdict = verifier.verify(result)
        assert verdict.ok, f"[{low},{high}]: {verdict.reason}"

    def test_empty_result_verifies(self, authenticator, verifier):
        # Keys are even; an odd singleton range selects nothing.
        result = authenticator.range_query(low=21, high=21)
        assert result.rows == []
        assert verifier.verify(result).ok

    def test_nonkey_selection_with_gaps_verifies(self, authenticator, verifier):
        # price = (k*7) % 100 — scattered matches, many gaps.
        result = authenticator.select(Comparison("price", "<", 30))
        assert 0 < len(result.rows) < 200
        assert verifier.verify(result).ok

    def test_conjunctive_selection_verifies(self, authenticator, verifier):
        pred = between("id", 50, 150) & Comparison("stock", ">=", 10)
        result = authenticator.select(pred)
        assert verifier.verify(result).ok

    def test_vo_size_independent_of_table_size(self, schema, keypair, policy):
        """The headline claim: |VO| depends on the result, not N_r."""
        small = build_tree(schema, keypair, policy, fanout=5, n=100)
        large = build_tree(schema, keypair, policy, fanout=5, n=800)
        q_small = QueryAuthenticator(small).range_query(low=20, high=60)
        q_large = QueryAuthenticator(large).range_query(low=20, high=60)
        assert q_small.vo.digest_count() <= 3 * q_large.vo.digest_count()
        assert q_large.vo.digest_count() <= 3 * q_small.vo.digest_count()


class TestHonestProjection:
    def test_projection_verifies(self, authenticator, verifier):
        result = authenticator.range_query(
            low=0, high=100, columns=("id", "name")
        )
        assert result.columns == ("id", "name")
        assert result.filtered_columns == ("price", "stock")
        assert verifier.verify(result).ok

    def test_projection_without_key_verifies(self, authenticator, verifier):
        result = authenticator.range_query(low=0, high=60, columns=("name",))
        assert verifier.verify(result).ok
        # Keys still shipped for digest recomputation.
        assert len(result.keys) == len(result.rows)

    def test_projection_plus_gaps_verifies(self, authenticator, verifier):
        result = authenticator.select(
            Comparison("price", ">=", 50), columns=("id", "price")
        )
        assert verifier.verify(result).ok

    def test_dp_cardinality(self, authenticator):
        result = authenticator.range_query(low=0, high=58, columns=("id",))
        filtered = len(result.all_columns) - 1
        assert result.vo.num_projection_digests == len(result.rows) * filtered


class TestVOFormats:
    def test_flat_format_only_under_flattened(self, schema, keypair):
        nested = build_tree(schema, keypair, DigestPolicy.NESTED, n=50)
        auth = QueryAuthenticator(nested)
        with pytest.raises(VOFormatError):
            auth.range_query(low=0, high=20, vo_format=VOFormat.FLAT_SET)

    def test_flat_entries_carry_no_positions(self, schema, keypair):
        flat_tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=50)
        result = QueryAuthenticator(flat_tree).range_query(
            low=0, high=20, vo_format=VOFormat.FLAT_SET
        )
        assert result.vo.result_positions is None
        assert all(e.path is None for e in result.vo.selection_entries)

    def test_structured_under_flattened_also_verifies(
        self, schema, keypair
    ):
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=60)
        auth = QueryAuthenticator(tree)
        result = auth.range_query(low=10, high=80, vo_format=VOFormat.STRUCTURED)
        verifier = ResultVerifier(
            DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED),
            public_key=keypair.public,
        )
        assert verifier.verify(result).ok

    def test_both_formats_same_digest_count(self, schema, keypair):
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=60)
        auth = QueryAuthenticator(tree)
        flat = auth.range_query(low=10, high=80, vo_format=VOFormat.FLAT_SET)
        structured = auth.range_query(
            low=10, high=80, vo_format=VOFormat.STRUCTURED
        )
        assert flat.vo.digest_count() == structured.vo.digest_count()


class TestTamperDetection:
    """No adversarial modification may survive verification."""

    def _result(self, authenticator):
        return authenticator.range_query(low=20, high=120)

    def test_modified_value_detected(self, authenticator, verifier):
        result = self._result(authenticator)
        row = list(result.rows[3])
        row[1] = row[1] + "X"  # tamper with 'name'
        result.rows[3] = tuple(row)
        assert not verifier.verify(result).ok

    def test_modified_int_value_detected(self, authenticator, verifier):
        result = self._result(authenticator)
        row = list(result.rows[0])
        row[2] += 1  # price
        result.rows[0] = tuple(row)
        assert not verifier.verify(result).ok

    def test_spurious_tuple_detected(self, authenticator, verifier):
        result = self._result(authenticator)
        result.rows.append((999, "fake", 1, 1))
        result.keys.append(999)
        if result.vo.result_positions is not None:
            result.vo.result_positions.append(
                result.vo.result_positions[-1]
            )
        assert not verifier.verify(result).ok

    def test_duplicated_tuple_detected(self, authenticator, verifier):
        result = self._result(authenticator)
        result.rows.append(result.rows[0])
        result.keys.append(result.keys[0])
        if result.vo.result_positions is not None:
            result.vo.result_positions.append(result.vo.result_positions[0])
        assert not verifier.verify(result).ok

    def test_dropped_tuple_detected(self, authenticator, verifier):
        """Dropping a tuple without covering it in D_S fails (its digest
        is missing from the recomputation)."""
        result = self._result(authenticator)
        result.rows.pop(2)
        result.keys.pop(2)
        if result.vo.result_positions is not None:
            result.vo.result_positions.pop(2)
        assert not verifier.verify(result).ok

    def test_swapped_values_between_tuples_detected(self, authenticator, verifier):
        """Swapping an attribute value between two rows keeps the
        multiset of raw values but changes per-tuple digests (the key is
        hashed into every attribute digest)."""
        result = self._result(authenticator)
        r0, r1 = list(result.rows[0]), list(result.rows[1])
        r0[2], r1[2] = r1[2], r0[2]
        result.rows[0], result.rows[1] = tuple(r0), tuple(r1)
        assert not verifier.verify(result).ok

    def test_tampered_ds_digest_detected(self, authenticator, verifier):
        result = authenticator.select(Comparison("price", "<", 20))
        if not result.vo.selection_entries:
            pytest.skip("no gaps in this draw")
        entry = result.vo.selection_entries[0]
        from repro.crypto.signatures import SignedDigest

        forged = SignedDigest(
            signature=entry.signed.signature ^ 1, epoch=entry.signed.epoch
        )
        result.vo.selection_entries[0] = type(entry)(
            kind=entry.kind,
            signed=forged,
            path=entry.path,
            slot=entry.slot,
        )
        assert not verifier.verify(result).ok

    def test_tampered_top_digest_detected(self, authenticator, verifier):
        from repro.crypto.signatures import SignedDigest

        result = self._result(authenticator)
        result.vo.top_signed = SignedDigest(
            signature=result.vo.top_signed.signature ^ 1,
            epoch=result.vo.top_signed.epoch,
        )
        assert not verifier.verify(result).ok

    def test_dropped_ds_entry_detected(self, authenticator, verifier):
        result = authenticator.range_query(low=22, high=70)
        if not result.vo.selection_entries:
            pytest.skip("no D_S entries for this range")
        result.vo.selection_entries.pop(0)
        assert not verifier.verify(result).ok

    def test_dropped_dp_entry_detected(self, authenticator, verifier):
        result = authenticator.range_query(low=0, high=40, columns=("id",))
        result.vo.projection_entries.pop(0)
        assert not verifier.verify(result).ok

    def test_projection_value_smuggling_detected(self, authenticator, verifier):
        """Renaming a returned column (pretending a value belongs to a
        different attribute) is caught because the attribute name is
        hashed into the digest."""
        result = authenticator.range_query(
            low=0, high=40, columns=("id", "price")
        )
        result.columns = ("id", "stock")  # lie about which column it is
        assert not verifier.verify(result).ok

    def test_wrong_key_for_row_detected(self, authenticator, verifier):
        result = self._result(authenticator)
        result.keys[0] = result.keys[1]
        assert not verifier.verify(result).ok


class TestColludingDrop:
    """The paper's trust-model boundary: an edge server that drops a
    qualifying tuple AND re-covers it as a gap digest produces a VO that
    still verifies — edge servers are assumed not to act maliciously
    (Section 3.1).  This test pins that boundary explicitly."""

    def test_drop_and_cover_passes(self, schema, keypair):
        tree = build_tree(schema, keypair, DigestPolicy.FLATTENED, n=60)
        auth = QueryAuthenticator(tree)
        result = auth.range_query(low=0, high=60, vo_format=VOFormat.FLAT_SET)
        # Maliciously drop row 1 but add its signed tuple digest to D_S.
        dropped_key = result.keys[1]
        result.rows.pop(1)
        result.keys.pop(1)
        from repro.core.vo import VOEntry, VOEntryKind

        result.vo.selection_entries.append(
            VOEntry(
                kind=VOEntryKind.TUPLE,
                signed=tree.tuple_auth(dropped_key).signed_tuple,
            )
        )
        verifier = ResultVerifier(
            DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED),
            public_key=keypair.public,
        )
        assert verifier.verify(result).ok  # documented model boundary


class TestPropertyBasedRanges:
    @given(
        st.integers(min_value=-10, max_value=420),
        st.integers(min_value=-10, max_value=420),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_range_verifies(self, authenticator, verifier, a, b):
        low, high = min(a, b), max(a, b)
        result = authenticator.range_query(low=low, high=high)
        expected = [k for k in range(0, 400, 2) if low <= k <= high]
        assert result.keys == expected
        assert verifier.verify(result).ok

    @given(st.integers(min_value=0, max_value=99))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_price_threshold_verifies(self, authenticator, verifier, t):
        result = authenticator.select(Comparison("price", "<", t))
        assert verifier.verify(result).ok
