"""Tests for enveloping-subtree computation."""

import pytest

from repro.core.envelope import find_envelope
from repro.exceptions import IncompleteResultError

from tests.core.conftest import build_tree
from repro.core.digests import DigestPolicy


@pytest.fixture(scope="module")
def vbt(schema, keypair):
    return build_tree(schema, keypair, DigestPolicy.FLATTENED, fanout=4, n=100)


class TestEnvelopeShape:
    def test_single_key_envelope_is_leaf(self, vbt):
        env = find_envelope(vbt.tree, [20])
        assert env.top.is_leaf
        assert env.height == 1
        assert env.num_result == 1

    def test_full_range_envelope_is_root(self, vbt):
        keys = [r.key for r in vbt.rows()]
        env = find_envelope(vbt.tree, keys)
        assert env.top is vbt.tree.root
        assert env.num_result == len(keys)

    def test_envelope_minimal(self, vbt):
        """The envelope top must cover the result but none of its
        children may cover it alone."""
        keys = [r.key for r in vbt.rows()][10:40]
        env = find_envelope(vbt.tree, keys)
        if env.top.is_leaf:
            return
        first, last = keys[0], keys[-1]
        for child in env.top.children:
            leaf_first = vbt.tree.find_leaf(first)
            leaf_last = vbt.tree.find_leaf(last)
            covers_first = any(
                n is child for n in vbt.tree.path_to(leaf_first)
            )
            covers_last = any(n is child for n in vbt.tree.path_to(leaf_last))
            assert not (covers_first and covers_last)

    def test_positions_cover_results_exactly(self, vbt):
        keys = [r.key for r in vbt.rows()][5:25]
        env = find_envelope(vbt.tree, keys)
        assert sorted(p.key for p in env.result_positions) == sorted(keys)

    def test_gaps_and_results_disjoint(self, vbt):
        keys = [r.key for r in vbt.rows()][5:25]
        env = find_envelope(vbt.tree, keys)
        gap_tuples = {g.ref for g in env.gaps if g.kind == "tuple"}
        assert gap_tuples.isdisjoint(set(keys))

    def test_noncontiguous_results_have_tuple_gaps(self, vbt):
        all_keys = [r.key for r in vbt.rows()]
        sparse = all_keys[10:30:2]  # every other key -> gaps in between
        env = find_envelope(vbt.tree, sparse)
        tuple_gaps = [g for g in env.gaps if g.kind == "tuple"]
        assert len(tuple_gaps) >= len(sparse) - 1

    def test_claimed_missing_key_rejected(self, vbt):
        with pytest.raises(IncompleteResultError):
            find_envelope(vbt.tree, [21])  # odd keys don't exist

    def test_empty_result_envelope(self, vbt):
        env = find_envelope(vbt.tree, [])
        assert env.top.is_leaf
        assert env.num_result == 0
        assert len(env.gaps) == len(env.top.keys)


class TestEnvelopeAccounting:
    def test_every_leaf_slot_accounted(self, vbt):
        """Within the envelope, walked leaves' slots are exactly
        partitioned into results and tuple-gaps."""
        keys = [r.key for r in vbt.rows()][7:53]
        env = find_envelope(vbt.tree, keys)
        result_slots = {(p.path, p.slot) for p in env.result_positions}
        gap_slots = {
            (g.path, g.slot) for g in env.gaps if g.kind == "tuple"
        }
        assert result_slots.isdisjoint(gap_slots)

    def test_pruned_nodes_contain_no_results(self, vbt):
        keys = [r.key for r in vbt.rows()][30:40]
        key_set = set(keys)
        env = find_envelope(vbt.tree, keys)
        for gap in env.gaps:
            if gap.kind != "node":
                continue
            stack = [gap.ref]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    assert key_set.isdisjoint(set(node.keys))
                else:
                    stack.extend(node.children)

    def test_envelope_height_bounds(self, vbt):
        keys = [r.key for r in vbt.rows()][:3]
        env = find_envelope(vbt.tree, keys)
        assert 1 <= env.height <= vbt.tree.height()
