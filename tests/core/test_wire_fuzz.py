"""Robustness fuzzing of the wire format and verifier.

An edge server (or the network) can hand the client arbitrary bytes.
Whatever happens, the client must end in exactly one of two states:
a clean parse error (``VOFormatError``/``SignatureError``/
``EncodingError``) or a verdict — never an unhandled exception, never
a bogus ``ok=True``."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digests import DigestEngine, DigestPolicy
from repro.core.query_auth import QueryAuthenticator
from repro.core.verify import ResultVerifier
from repro.core.wire import result_from_bytes, result_to_bytes
from repro.exceptions import (
    EncodingError,
    ReproError,
    SignatureError,
    VOFormatError,
)

from tests.core.conftest import DB_NAME, build_tree

ACCEPTABLE = (VOFormatError, SignatureError, EncodingError)


@pytest.fixture(scope="module", params=[DigestPolicy.FLATTENED, DigestPolicy.NESTED])
def wire_setup(request, schema, keypair):
    tree = build_tree(schema, keypair, request.param, n=60)
    auth = QueryAuthenticator(tree)
    result = auth.range_query(low=10, high=80, columns=("id", "name"))
    data = result_to_bytes(result, keypair.public.signature_len)
    verifier = ResultVerifier(
        DigestEngine(DB_NAME, policy=request.param), public_key=keypair.public
    )
    return data, verifier


class TestByteFlipFuzz:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(0, 255))
    @settings(
        max_examples=250,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_single_byte_corruption_never_verifies(
        self, wire_setup, position, new_byte
    ):
        data, verifier = wire_setup
        pos = position % len(data)
        if data[pos] == new_byte:
            return  # not a mutation
        corrupted = data[:pos] + bytes([new_byte]) + data[pos + 1 :]
        try:
            parsed = result_from_bytes(corrupted)
        except ACCEPTABLE:
            return  # clean parse rejection
        except OverflowError:
            return  # absurd length field; also a clean rejection path
        # Parsed => must verify to a verdict; the verdict may be ok only
        # if the mutation hit redundant framing (it cannot change the
        # result values or digests without breaking verification).
        verdict = verifier.verify(parsed)
        if verdict.ok:
            original = result_from_bytes(data)
            assert parsed.rows == original.rows
            assert parsed.keys == original.keys

    @given(st.integers(min_value=1, max_value=64))
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncation_rejected(self, wire_setup, cut):
        data, _verifier = wire_setup
        with pytest.raises(ACCEPTABLE):
            result_from_bytes(data[: len(data) - cut])

    @given(st.binary(min_size=0, max_size=200))
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_garbage_rejected_cleanly(self, wire_setup, garbage):
        _data, _verifier = wire_setup
        try:
            result_from_bytes(garbage)
        except ACCEPTABLE:
            pass
        except (OverflowError, IndexError):
            pass  # hostile length fields; still not a crash of ours
        # If it parsed (astronomically unlikely), that's fine too —
        # verification is the gate, not parsing.


class TestShuffleFuzz:
    def test_block_swap_detected(self, wire_setup):
        """Swapping two interior chunks must not produce a verifying
        result with altered content."""
        data, verifier = wire_setup
        rng = random.Random(0)
        for _ in range(30):
            a = rng.randrange(8, len(data) - 64)
            b = rng.randrange(8, len(data) - 64)
            size = rng.randrange(4, 32)
            if abs(a - b) < size:
                continue
            mutated = bytearray(data)
            mutated[a : a + size], mutated[b : b + size] = (
                mutated[b : b + size],
                mutated[a : a + size],
            )
            try:
                parsed = result_from_bytes(bytes(mutated))
            except (ReproError, OverflowError, IndexError):
                continue
            verdict = verifier.verify(parsed)
            if verdict.ok:
                original = result_from_bytes(data)
                assert parsed.rows == original.rows
