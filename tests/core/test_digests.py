"""Tests for the digest engine — formulas (1), (2), (3)."""

import pytest

from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.crypto.commutative import (
    AdditiveSetHash,
    ExponentialCommutativeHash,
)
from repro.crypto.meter import CostMeter
from repro.crypto.signatures import DigestSigner, DigestVerifier
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import AuthenticationError

from tests.core.conftest import DB_NAME


@pytest.fixture
def schema():
    return TableSchema(
        "t",
        (Column("id", IntType()), Column("v", VarcharType(capacity=10))),
        key="id",
    )


@pytest.fixture(params=[DigestPolicy.FLATTENED, DigestPolicy.NESTED])
def engine(request):
    return DigestEngine(DB_NAME, policy=request.param)


class TestAttributeDigests:
    def test_deterministic(self, engine):
        a = engine.attribute_value("t", "v", 1, "x")
        assert a == engine.attribute_value("t", "v", 1, "x")

    @pytest.mark.parametrize(
        "table,attr,key,value",
        [
            ("t2", "v", 1, "x"),
            ("t", "v2", 1, "x"),
            ("t", "v", 2, "x"),
            ("t", "v", 1, "y"),
        ],
    )
    def test_every_input_matters(self, engine, table, attr, key, value):
        base = engine.attribute_value("t", "v", 1, "x")
        assert engine.attribute_value(table, attr, key, value) != base

    def test_db_name_matters(self):
        e1 = DigestEngine("db1")
        e2 = DigestEngine("db2")
        assert e1.attribute_value("t", "v", 1, "x") != e2.attribute_value(
            "t", "v", 1, "x"
        )


class TestTupleDigests:
    def test_tuple_value_commutative(self, engine):
        vals = [engine.attribute_value("t", f"a{i}", 1, i) for i in range(5)]
        assert engine.tuple_value(vals) == engine.tuple_value(vals[::-1])

    def test_flattened_is_product(self):
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED)
        h = engine.commutative
        a1 = engine.attribute_value("t", "x", 1, 1)
        a2 = engine.attribute_value("t", "y", 1, 2)
        assert engine.tuple_value([a1, a2]) == (a1 * a2) % h.modulus

    def test_nested_is_combined_hash(self):
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.NESTED)
        h = engine.commutative
        a1 = engine.attribute_value("t", "x", 1, 1)
        a2 = engine.attribute_value("t", "y", 1, 2)
        assert engine.tuple_value([a1, a2]) == h.combine([a1, a2])

    def test_empty_tuple_rejected(self, engine):
        with pytest.raises(AuthenticationError):
            engine.tuple_value([])

    def test_tuple_digests_from_row(self, engine, schema):
        row = Row(schema, (7, "hello"))
        d = engine.tuple_digests("t", row)
        assert len(d.attribute_values) == 2
        assert d.tuple_value == engine.tuple_value(d.attribute_values)


class TestNodeDigests:
    def test_commutative(self, engine):
        vals = [engine.attribute_value("t", "a", i, i) for i in range(4)]
        assert engine.node_value(vals) == engine.node_value(vals[::-1])

    def test_empty_node_identity(self, engine):
        empty = engine.node_value([])
        v = engine.attribute_value("t", "a", 1, 1)
        # Folding the identity with one value gives that value's digest.
        assert engine.node_value([v]) == engine.node_value([v])
        assert isinstance(empty, int)

    def test_flattened_fold_matches_recompute(self):
        """The paper's incremental insert: fold == full recompute."""
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED)
        tuples = [engine.attribute_value("t", "a", i, i) for i in range(6)]
        node = engine.node_value(tuples[:5])
        assert engine.fold_into_node(node, tuples[5]) == engine.node_value(tuples)

    def test_nested_fold_rejected(self):
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.NESTED)
        with pytest.raises(AuthenticationError):
            engine.fold_into_node(1, 2)

    def test_display_value_flattened(self):
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.FLATTENED)
        h = engine.commutative
        x = 12345
        assert engine.display_value(x) == pow(h.generator, x, h.modulus)

    def test_display_value_nested_identity(self):
        engine = DigestEngine(DB_NAME, policy=DigestPolicy.NESTED)
        assert engine.display_value(777) == 777

    def test_negative_values_rejected(self, engine):
        with pytest.raises(AuthenticationError):
            engine.node_value([0]) if engine.policy is DigestPolicy.FLATTENED else (
                _ for _ in ()
            ).throw(AuthenticationError("skip"))


class TestPolicyConstraints:
    def test_flattened_requires_exponential_hash(self):
        with pytest.raises(AuthenticationError):
            DigestEngine(
                DB_NAME,
                commutative=AdditiveSetHash(),
                policy=DigestPolicy.FLATTENED,
            )

    def test_nested_allows_other_hashes(self):
        engine = DigestEngine(
            DB_NAME, commutative=AdditiveSetHash(), policy=DigestPolicy.NESTED
        )
        assert engine.tuple_value([3, 5]) == engine.commutative.combine([3, 5])


class TestSigningEngine:
    def test_sign_tuple_roundtrip(self, schema, engine):
        from repro.crypto.rsa import generate_keypair

        kp = generate_keypair(bits=512, seed=5)
        signing = SigningDigestEngine(engine, DigestSigner.from_keypair(kp))
        verifier = DigestVerifier(kp.public)
        row = Row(schema, (3, "abc"))
        digests, signed_tuple, signed_attrs = signing.sign_tuple("t", row)
        assert verifier.recover(signed_tuple) == digests.tuple_value
        for sig, value in zip(signed_attrs, digests.attribute_values, strict=True):
            assert verifier.recover(sig) == value


class TestMetering:
    def test_hashes_and_combines_counted(self, schema):
        meter = CostMeter()
        engine = DigestEngine(
            DB_NAME,
            commutative=ExponentialCommutativeHash(meter=meter),
            policy=DigestPolicy.FLATTENED,
            meter=meter,
        )
        row = Row(schema, (3, "abc"))
        engine.tuple_digests("t", row)
        assert meter.hashes == 2      # one per attribute
        assert meter.combines >= 2    # product folds
