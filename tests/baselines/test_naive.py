"""Tests for the Naive baseline (paper appendix)."""

import pytest

from repro.baselines.naive import NaiveStore, NaiveVerifier
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.crypto.meter import CostMeter
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import VOFormatError

DB = "naivedb"


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, seed=77)


@pytest.fixture(scope="module")
def schema():
    return TableSchema(
        "products",
        (
            Column("id", IntType()),
            Column("label", VarcharType(capacity=16)),
            Column("price", IntType()),
        ),
        key="id",
    )


@pytest.fixture(scope="module")
def rows(schema):
    return [Row(schema, (i, f"p{i}", i * 3)) for i in range(50)]


@pytest.fixture(scope="module")
def store(schema, rows, keypair):
    engine = DigestEngine(DB, policy=DigestPolicy.FLATTENED)
    signing = SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))
    return NaiveStore.build(schema, rows, signing)


@pytest.fixture
def verifier(keypair):
    return NaiveVerifier(
        DigestEngine(DB, policy=DigestPolicy.FLATTENED),
        public_key=keypair.public,
    )


class TestHonestResults:
    def test_full_rows_verify(self, store, rows, verifier):
        result = store.build_result(rows[5:20])
        assert verifier.verify(result)
        assert result.num_rows == 15

    def test_projection_verifies(self, store, rows, verifier):
        result = store.build_result(rows[:10], columns=("id", "price"))
        assert result.filtered_columns == ("label",)
        assert verifier.verify(result)

    def test_single_row(self, store, rows, verifier):
        assert verifier.verify(store.build_result(rows[:1]))

    def test_empty_result(self, store, verifier):
        assert verifier.verify(store.build_result([]))

    def test_per_tuple_decryptions(self, store, rows, keypair):
        """The defining cost: one decryption per tuple (plus one per
        filtered attribute)."""
        meter = CostMeter()
        verifier = NaiveVerifier(
            DigestEngine(DB, policy=DigestPolicy.FLATTENED),
            public_key=keypair.public,
            meter=meter,
        )
        result = store.build_result(rows[:10], columns=("id",))
        assert verifier.verify(result)
        # 10 tuple digests + 10 rows x 2 filtered attrs
        assert meter.verifies == 10 + 20


class TestTamperDetection:
    def test_modified_value(self, store, rows, verifier):
        result = store.build_result(rows[:5])
        r = list(result.rows[0])
        r[2] += 1
        result.rows[0] = tuple(r)
        assert not verifier.verify(result)

    def test_spurious_tuple(self, store, rows, verifier):
        result = store.build_result(rows[:5])
        result.rows.append((999, "fake", 0))
        result.keys.append(999)
        result.tuple_digests.append(result.tuple_digests[0])
        result.filtered_attr_digests.append(result.filtered_attr_digests[0])
        assert not verifier.verify(result)

    def test_swapped_digests(self, store, rows, verifier):
        result = store.build_result(rows[:5])
        result.tuple_digests[0], result.tuple_digests[1] = (
            result.tuple_digests[1],
            result.tuple_digests[0],
        )
        assert not verifier.verify(result)

    def test_misaligned_arrays(self, store, rows, verifier):
        result = store.build_result(rows[:5])
        result.keys.pop()
        assert not verifier.verify(result)

    def test_wrong_filtered_digest(self, store, rows, verifier):
        result = store.build_result(rows[:5], columns=("id",))
        result.filtered_attr_digests[0] = result.filtered_attr_digests[1]
        assert not verifier.verify(result)


class TestMaintenance:
    def test_add_and_remove(self, schema, keypair):
        engine = DigestEngine(DB, policy=DigestPolicy.FLATTENED)
        signing = SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))
        store = NaiveStore(schema, signing)
        row = Row(schema, (1, "x", 2))
        store.add(row)
        assert store.auth_for(1)
        store.remove(1)
        with pytest.raises(VOFormatError):
            store.auth_for(1)


class TestWireSize:
    def test_grows_linearly_with_rows(self, store, rows, keypair):
        sig_len = keypair.public.signature_len
        s5 = store.build_result(rows[:5]).wire_size(sig_len)
        s10 = store.build_result(rows[:10]).wire_size(sig_len)
        s20 = store.build_result(rows[:20]).wire_size(sig_len)
        assert s20 - s10 == pytest.approx(2 * (s10 - s5), rel=0.2)

    def test_projection_ships_digests_for_filtered(self, store, rows, keypair):
        sig_len = keypair.public.signature_len
        full = store.build_result(rows[:10]).wire_size(sig_len)
        proj = store.build_result(rows[:10], columns=("id",)).wire_size(sig_len)
        # Filtered attributes are replaced by (large RSA) digests here,
        # so projection *costs* bytes with 512-bit signatures — the
        # paper's 16-byte-digest assumption is what makes it cheap.
        assert proj != full
