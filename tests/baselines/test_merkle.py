"""Tests for the Merkle-tree baseline (Devanbu et al. style)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.merkle import MerkleTree, MerkleVerifier
from repro.crypto.meter import CostMeter
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import VOFormatError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, seed=88)


@pytest.fixture(scope="module")
def schema():
    return TableSchema(
        "log",
        (Column("seq", IntType()), Column("msg", VarcharType(capacity=12))),
        key="seq",
    )


@pytest.fixture(scope="module")
def rows(schema):
    return [Row(schema, (i * 2, f"m{i}")) for i in range(100)]


@pytest.fixture(scope="module")
def tree(schema, rows, keypair):
    return MerkleTree(schema, rows, DigestSigner.from_keypair(keypair))


@pytest.fixture
def verifier(keypair):
    return MerkleVerifier(keypair.public)


class TestConstruction:
    def test_height_logarithmic(self, tree):
        assert tree.height() == 8  # ceil(log2(100)) + 1
        assert tree.num_rows == 100

    def test_root_deterministic(self, schema, rows, keypair):
        t2 = MerkleTree(schema, rows, DigestSigner.from_keypair(keypair))
        assert t2.root_hash() == tree_root(schema, rows, keypair)

    def test_single_row_tree(self, schema, keypair):
        t = MerkleTree(
            schema,
            [Row(schema, (1, "only"))],
            DigestSigner.from_keypair(keypair),
        )
        assert t.height() == 1
        proof = t.prove_range(0, 1)
        assert MerkleVerifier(keypair.public).verify(proof)

    def test_empty_tree_has_root(self, schema, keypair):
        t = MerkleTree(schema, [], DigestSigner.from_keypair(keypair))
        assert t.root_hash()


def tree_root(schema, rows, keypair):
    return MerkleTree(schema, rows, DigestSigner.from_keypair(keypair)).root_hash()


class TestProofs:
    @pytest.mark.parametrize(
        "first,count", [(0, 1), (0, 100), (37, 1), (10, 25), (99, 1), (50, 50)]
    )
    def test_ranges_verify(self, tree, verifier, first, count):
        assert verifier.verify(tree.prove_range(first, count))

    def test_key_range_proof(self, tree, verifier):
        proof = tree.prove_key_range(20, 60)
        assert len(proof.rows) == 21  # keys 20..60 step 2
        assert verifier.verify(proof)

    def test_out_of_bounds_rejected(self, tree):
        with pytest.raises(VOFormatError):
            tree.prove_range(90, 20)
        with pytest.raises(VOFormatError):
            tree.prove_range(-1, 5)

    def test_empty_range_rejected(self, tree):
        with pytest.raises(VOFormatError):
            tree.prove_range(5, 0)

    @given(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=1, max_value=100),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_valid_range_verifies(self, tree, verifier, first, count):
        count = min(count, 100 - first)
        assert verifier.verify(tree.prove_range(first, count))


class TestTamperDetection:
    def test_modified_tuple(self, tree, verifier):
        proof = tree.prove_range(10, 5)
        rows = list(proof.rows)
        rows[0] = (rows[0][0], "EVIL")
        tampered = type(proof)(
            table=proof.table,
            first_index=proof.first_index,
            total_leaves=proof.total_leaves,
            rows=tuple(rows),
            siblings=proof.siblings,
            signed_root=proof.signed_root,
        )
        assert not verifier.verify(tampered)

    def test_shifted_range_claim(self, tree, verifier):
        proof = tree.prove_range(10, 5)
        shifted = type(proof)(
            table=proof.table,
            first_index=11,  # lie about where the range starts
            total_leaves=proof.total_leaves,
            rows=proof.rows,
            siblings=proof.siblings,
            signed_root=proof.signed_root,
        )
        assert not verifier.verify(shifted)

    def test_missing_sibling(self, tree, verifier):
        proof = tree.prove_range(10, 5)
        broken = type(proof)(
            table=proof.table,
            first_index=proof.first_index,
            total_leaves=proof.total_leaves,
            rows=proof.rows,
            siblings=proof.siblings[1:],
            signed_root=proof.signed_root,
        )
        assert not verifier.verify(broken)

    def test_forged_root_signature(self, tree, verifier):
        from repro.crypto.signatures import SignedDigest

        proof = tree.prove_range(10, 5)
        forged = type(proof)(
            table=proof.table,
            first_index=proof.first_index,
            total_leaves=proof.total_leaves,
            rows=proof.rows,
            siblings=proof.siblings,
            signed_root=SignedDigest(
                signature=proof.signed_root.signature ^ 1,
                epoch=proof.signed_root.epoch,
            ),
        )
        assert not verifier.verify(forged)


class TestPaperCriticisms:
    """Quantify the limitations Section 2 attributes to this scheme."""

    def test_vo_grows_with_table_size(self, schema, keypair, verifier):
        """Same 5-tuple result, 10x table size => more sibling hashes
        (VB-tree VOs are size-independent; this baseline's are not)."""
        signer = DigestSigner.from_keypair(keypair)
        small_rows = [Row(schema, (i, f"m{i}")) for i in range(64)]
        big_rows = [Row(schema, (i, f"m{i}")) for i in range(4096)]
        small = MerkleTree(schema, small_rows, signer)
        big = MerkleTree(schema, big_rows, signer)
        p_small = small.prove_range(10, 5)
        p_big = big.prove_range(10, 5)
        assert len(p_big.siblings) > len(p_small.siblings)

    def test_single_signature_total(self, tree):
        """Only the root is ever signed — updates would invalidate it
        for every reader (no per-subtree independence)."""
        proof_a = tree.prove_range(0, 3)
        proof_b = tree.prove_range(90, 3)
        assert proof_a.signed_root == proof_b.signed_root

    def test_hash_count_logarithmic(self, tree, keypair):
        meter = CostMeter()
        verifier = MerkleVerifier(keypair.public, meter=meter)
        assert verifier.verify(tree.prove_range(42, 1))
        # 1 leaf hash + ~log2(100) internal recomputations.
        assert meter.hashes <= 1 + tree.height() + 1
