"""Integration tests: SQL session over central + edge + verification."""

import pytest

from repro.edge.adversary import ResponseTamper
from repro.edge.central import CentralServer
from repro.exceptions import PlanningError, VerificationFailure
from repro.sql.session import Session


@pytest.fixture
def session():
    central = CentralServer(db_name="sqldb", rsa_bits=512, seed=42)
    s = Session(central)
    s.execute(
        "CREATE TABLE products (id INT, name VARCHAR(20), price INT, "
        "qty INT, PRIMARY KEY (id))"
    )
    for i in range(40):
        s.execute(
            f"INSERT INTO products VALUES ({i}, 'prod{i}', {i * 3}, {i % 7})"
        )
    return s


class TestDDLDML:
    def test_create_and_insert(self, session):
        out = session.query("SELECT * FROM products")
        assert len(out) == 40
        assert out.verdict.ok

    def test_insert_multi_values(self, session):
        n = session.execute("INSERT INTO products VALUES (100, 'a', 1, 1), (101, 'b', 2, 2)")
        assert n == 2
        assert len(session.query("SELECT * FROM products WHERE id >= 100")) == 2

    def test_delete_where(self, session):
        n = session.execute("DELETE FROM products WHERE id BETWEEN 10 AND 19")
        assert n == 10
        out = session.query("SELECT * FROM products")
        assert len(out) == 30
        assert out.verdict.ok

    def test_delete_all(self, session):
        n = session.execute("DELETE FROM products")
        assert n == 40
        assert len(session.query("SELECT * FROM products")) == 0


class TestQueries:
    def test_key_range(self, session):
        out = session.query("SELECT * FROM products WHERE id BETWEEN 5 AND 9")
        assert len(out) == 5
        assert out.wire_bytes > 0

    def test_projection(self, session):
        out = session.query("SELECT name, price FROM products WHERE id < 3")
        assert out.columns == ("name", "price")
        assert out.rows[0] == ("prod0", 0)

    def test_nonkey_predicate(self, session):
        out = session.query("SELECT id FROM products WHERE qty = 3")
        assert all(r[0] % 7 == 3 for r in out.rows)
        assert out.verdict.ok

    def test_disjunction(self, session):
        out = session.query(
            "SELECT id FROM products WHERE id = 1 OR id = 38"
        )
        assert [r[0] for r in out.rows] == [1, 38]

    def test_string_predicate(self, session):
        out = session.query("SELECT id FROM products WHERE name = 'prod7'")
        assert [r[0] for r in out.rows] == [7]

    def test_unknown_table(self, session):
        with pytest.raises(PlanningError):
            session.query("SELECT * FROM ghost")

    def test_unknown_column(self, session):
        with pytest.raises(PlanningError):
            session.query("SELECT nope FROM products")

    def test_select_via_execute_rejected(self, session):
        with pytest.raises(PlanningError):
            session.execute("SELECT * FROM products")

    def test_query_via_execute_rejected(self, session):
        with pytest.raises(PlanningError):
            session.query("DELETE FROM products")


class TestJoinViews:
    def test_view_lifecycle(self):
        central = CentralServer(db_name="joindb", rsa_bits=512, seed=43)
        s = Session(central)
        s.execute("CREATE TABLE a (k INT, x INT, PRIMARY KEY (k))")
        s.execute("CREATE TABLE b (k2 INT, y INT, PRIMARY KEY (k2))")
        for i in range(10):
            s.execute(f"INSERT INTO a VALUES ({i}, {i * 10})")
            s.execute(f"INSERT INTO b VALUES ({i}, {i * 100})")
        s.execute(
            "CREATE MATERIALIZED VIEW ab AS SELECT * FROM a JOIN b ON a.k = b.k2"
        )
        out = s.query("SELECT * FROM ab WHERE view_id < 5")
        assert len(out) == 5
        assert out.verdict.ok

    def test_view_maintained_after_insert(self):
        central = CentralServer(db_name="joindb2", rsa_bits=512, seed=44)
        s = Session(central)
        s.execute("CREATE TABLE a (k INT, x INT, PRIMARY KEY (k))")
        s.execute("CREATE TABLE b (k2 INT, y INT, PRIMARY KEY (k2))")
        s.execute("INSERT INTO a VALUES (1, 10)")
        s.execute("INSERT INTO b VALUES (1, 100)")
        s.execute(
            "CREATE MATERIALIZED VIEW ab AS SELECT * FROM a JOIN b ON a.k = b.k2"
        )
        assert len(s.query("SELECT * FROM ab")) == 1
        s.execute("INSERT INTO a VALUES (2, 20)")
        s.execute("INSERT INTO b VALUES (2, 200)")
        out = s.query("SELECT * FROM ab")
        assert len(out) == 2
        assert out.verdict.ok


class TestVerificationIntegration:
    def test_strict_mode_raises_on_tamper(self, session):
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(
            session.edge
        )
        with pytest.raises(VerificationFailure):
            session.query("SELECT * FROM products WHERE id < 5")

    def test_lenient_mode_returns_verdict(self, session):
        session.strict = False
        ResponseTamper(row_index=0, column_index=1, new_value="evil").install(
            session.edge
        )
        out = session.query("SELECT * FROM products WHERE id < 5")
        assert not out.verdict.ok
