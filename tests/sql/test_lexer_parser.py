"""Tests for the SQL lexer and parser."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sql.ast_nodes import (
    CreateTable,
    CreateView,
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    WhereAnd,
    WhereComparison,
    WhereNot,
    WhereOr,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse, parse_many


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("myTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "myTable"

    def test_numbers(self):
        tokens = tokenize("42 3.25")
        assert [t.value for t in tokens[:-1]] == ["42", "3.25"]

    def test_negative_number_after_comparison(self):
        tokens = tokenize("x < -5")
        assert tokens[2].value == "-5"
        assert tokens[2].type is TokenType.NUMBER

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n x")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x"]

    def test_symbols(self):
        tokens = tokenize("<= >= != <> = ( ) , * .")
        assert [t.value for t in tokens[:-1]] == [
            "<=", ">=", "!=", "<>", "=", "(", ")", ",", "*", ".",
        ]

    def test_illegal_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParseSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM items")
        assert isinstance(stmt, SelectStmt)
        assert stmt.columns is None
        assert stmt.table == "items"
        assert stmt.where is None

    def test_columns(self):
        stmt = parse("SELECT id, name FROM items")
        assert stmt.columns == ("id", "name")

    def test_where_comparison(self):
        stmt = parse("SELECT * FROM t WHERE id = 5")
        assert stmt.where == WhereComparison("id", "=", 5)

    def test_where_between(self):
        stmt = parse("SELECT * FROM t WHERE id BETWEEN 2 AND 8")
        assert stmt.where == WhereAnd(
            WhereComparison("id", ">=", 2), WhereComparison("id", "<=", 8)
        )

    def test_where_and_or_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert isinstance(stmt.where, WhereOr)
        assert isinstance(stmt.where.right, WhereAnd)

    def test_where_parentheses(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, WhereAnd)
        assert isinstance(stmt.where.left, WhereOr)

    def test_where_not(self):
        stmt = parse("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, WhereNot)

    def test_neq_normalized(self):
        stmt = parse("SELECT * FROM t WHERE a <> 1")
        assert stmt.where == WhereComparison("a", "!=", 1)

    def test_string_and_bool_literals(self):
        stmt = parse("SELECT * FROM t WHERE name = 'bob' AND ok = TRUE")
        assert stmt.where.left.value == "bob"
        assert stmt.where.right.value is True

    def test_float_literal(self):
        stmt = parse("SELECT * FROM t WHERE price < 9.5")
        assert stmt.where.value == 9.5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t extra")

    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT *")


class TestParseInsertDelete:
    def test_insert_single(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a', 2.5)")
        assert isinstance(stmt, InsertStmt)
        assert stmt.rows == ((1, "a", 2.5),)

    def test_insert_multi(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert stmt.rows == ((1, "a"), (2, "b"))

    def test_insert_negative_number(self):
        stmt = parse("INSERT INTO t VALUES (-5, 'x')")
        assert stmt.rows[0][0] == -5

    def test_insert_null(self):
        stmt = parse("INSERT INTO t VALUES (1, NULL)")
        assert stmt.rows[0][1] is None

    def test_delete_with_where(self):
        stmt = parse("DELETE FROM t WHERE id > 10")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where == WhereComparison("id", ">", 10)

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None


class TestParseCreate:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE users (id INT, name VARCHAR(20), age INT, "
            "PRIMARY KEY (id))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.primary_key == "id"
        assert stmt.columns[1].type_name == "VARCHAR"
        assert stmt.columns[1].capacity == 20

    def test_create_table_requires_primary_key(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE t (id INT)")

    def test_create_view(self):
        stmt = parse(
            "CREATE MATERIALIZED VIEW ov AS SELECT * FROM orders "
            "JOIN customers ON orders.cid = customers.cid"
        )
        assert isinstance(stmt, CreateView)
        assert stmt.left_table == "orders"
        assert stmt.right_column == "cid"

    def test_create_view_reversed_on_clause(self):
        stmt = parse(
            "CREATE MATERIALIZED VIEW ov AS SELECT * FROM orders "
            "JOIN customers ON customers.cid = orders.oid"
        )
        assert stmt.left_column == "oid"
        assert stmt.right_column == "cid"

    def test_create_view_bad_tables(self):
        with pytest.raises(SQLSyntaxError):
            parse(
                "CREATE MATERIALIZED VIEW ov AS SELECT * FROM a "
                "JOIN b ON c.x = d.y"
            )


class TestParseMany:
    def test_script(self):
        stmts = parse_many(
            "CREATE TABLE t (id INT, PRIMARY KEY (id)); "
            "INSERT INTO t VALUES (1); "
            "SELECT * FROM t"
        )
        assert len(stmts) == 3

    def test_trailing_semicolon_ok(self):
        assert len(parse_many("SELECT * FROM t;")) == 1
