"""Tests for CREATE INDEX and secondary-index query routing."""

import pytest

from repro.db.expressions import And, Comparison, Not, Or, between
from repro.edge.central import CentralServer
from repro.sql.parser import parse
from repro.sql.ast_nodes import CreateIndex
from repro.sql.planner import exact_range_on
from repro.sql.session import Session
from repro.exceptions import SQLSyntaxError


class TestParseCreateIndex:
    def test_basic(self):
        stmt = parse("CREATE INDEX ON readings (temp)")
        assert stmt == CreateIndex(table="readings", column="temp")

    def test_missing_paren(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE INDEX ON readings temp")


class TestExactRangeOn:
    def test_single_comparison(self):
        r = exact_range_on(Comparison("a", ">=", 5), "a")
        assert r.low == 5 and r.high is None

    def test_between(self):
        r = exact_range_on(between("a", 2, 9), "a")
        assert (r.low, r.high) == (2, 9)

    def test_equality(self):
        r = exact_range_on(Comparison("a", "=", 7), "a")
        assert (r.low, r.high) == (7, 7)

    def test_other_column_rejected(self):
        assert exact_range_on(Comparison("b", "=", 1), "a") is None

    def test_mixed_conjunction_rejected(self):
        pred = And(Comparison("a", ">", 1), Comparison("b", "=", 2))
        assert exact_range_on(pred, "a") is None

    def test_or_rejected(self):
        pred = Or(Comparison("a", "=", 1), Comparison("a", "=", 5))
        assert exact_range_on(pred, "a") is None

    def test_not_rejected(self):
        assert exact_range_on(Not(Comparison("a", "=", 1)), "a") is None

    def test_neq_rejected(self):
        assert exact_range_on(Comparison("a", "!=", 1), "a") is None


@pytest.fixture
def session():
    central = CentralServer(db_name="idxdb", rsa_bits=512, seed=81)
    s = Session(central)
    s.execute(
        "CREATE TABLE readings (id INT, temp INT, site INT, PRIMARY KEY (id))"
    )
    for i in range(120):
        s.execute(f"INSERT INTO readings VALUES ({i}, {(i * 37) % 100}, {i % 4})")
    s.execute("CREATE INDEX ON readings (temp)")
    return s


class TestRouting:
    def test_index_created(self, session):
        assert "readings__by_temp" in session.central.vbtrees

    def test_range_on_indexed_attr_routed(self, session):
        out = session.query("SELECT * FROM readings WHERE temp BETWEEN 20 AND 40")
        assert out.verdict.ok
        assert all(20 <= r[1] <= 40 for r in out.rows)
        # Routed through the secondary index: contiguous envelope, so
        # the same query via the primary tree must ship more bytes.
        via_primary = session.edge.select(
            "readings", between("temp", 20, 40)
        )
        assert out.wire_bytes < via_primary.wire_bytes

    def test_equality_on_indexed_attr(self, session):
        out = session.query("SELECT id FROM readings WHERE temp = 37")
        assert out.verdict.ok
        primary_rows = session.query(
            "SELECT id FROM readings WHERE temp = 37 AND site >= 0"
        )  # mixed predicate -> primary path
        assert sorted(out.rows) == sorted(primary_rows.rows)

    def test_mixed_predicate_not_routed(self, session):
        # Still correct, just via the primary tree.
        out = session.query(
            "SELECT * FROM readings WHERE temp > 50 AND site = 1"
        )
        assert out.verdict.ok
        assert all(r[1] > 50 and r[2] == 1 for r in out.rows)

    def test_results_identical_to_primary_path(self, session):
        routed = session.query("SELECT * FROM readings WHERE temp BETWEEN 0 AND 99")
        primary = session.query("SELECT * FROM readings")
        assert sorted(routed.rows) == sorted(primary.rows)

    def test_insert_visible_through_index(self, session):
        session.execute("INSERT INTO readings VALUES (500, 42, 0)")
        out = session.query("SELECT id FROM readings WHERE temp = 42")
        assert (500,) in out.rows

    def test_delete_reflected_through_index(self, session):
        out_before = session.query("SELECT id FROM readings WHERE temp = 37")
        victim = out_before.rows[0][0]
        session.execute(f"DELETE FROM readings WHERE id = {victim}")
        out_after = session.query("SELECT id FROM readings WHERE temp = 37")
        assert (victim,) not in out_after.rows
        assert out_after.verdict.ok

    def test_exclusive_bound_not_routed_but_correct(self, session):
        # temp > 50 is exclusive; the session only routes inclusive
        # ranges, so this goes via the primary tree — and still verifies.
        out = session.query("SELECT * FROM readings WHERE temp > 97")
        assert out.verdict.ok
        assert all(r[1] > 97 for r in out.rows)
