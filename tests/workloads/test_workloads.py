"""Tests for the synthetic table and query workload generators."""

import pytest

from repro.exceptions import SchemaError
from repro.workloads.generator import (
    TableSpec,
    generate_rows,
    generate_table,
    skewed_insert_keys,
    zipf_ranks,
)
from repro.workloads.queries import QueryWorkload, range_for_selectivity


class TestTableGenerator:
    def test_shape(self):
        schema, rows = generate_table(TableSpec(rows=50, columns=5))
        assert schema.num_columns == 5
        assert len(rows) == 50
        assert schema.key == "id"

    def test_deterministic(self):
        spec = TableSpec(rows=20, seed=9)
        assert generate_rows(spec) == generate_rows(spec)

    def test_different_seeds_differ(self):
        a = generate_rows(TableSpec(rows=20, seed=1))
        b = generate_rows(TableSpec(rows=20, seed=2))
        assert a != b

    def test_key_step_leaves_holes(self):
        _schema, rows = generate_table(TableSpec(rows=10, key_step=3))
        keys = [r[0] for r in rows]
        assert keys == list(range(0, 30, 3))

    def test_attr_size_respected(self):
        schema, rows = generate_table(TableSpec(rows=5, attr_size=7))
        assert all(len(v) == 7 for r in rows for v in r[1:])
        assert schema.columns[1].type.capacity == 7

    def test_rows_validate_against_schema(self):
        from repro.db.table import Table

        schema, rows = generate_table(TableSpec(rows=30))
        table = Table(schema)
        table.insert_many(rows)
        assert len(table) == 30

    def test_invalid_specs_rejected(self):
        with pytest.raises(SchemaError):
            TableSpec(columns=1)
        with pytest.raises(SchemaError):
            TableSpec(attr_size=0)
        with pytest.raises(SchemaError):
            TableSpec(key_step=0)


class TestSelectivityRanges:
    def test_exact_cardinality(self):
        spec = TableSpec(rows=100)
        for sel in (0.01, 0.2, 0.5, 1.0):
            q = range_for_selectivity(spec, sel)
            assert q.expected_rows == round(100 * sel)
            keys = set(range(spec.rows))
            hit = [k for k in keys if q.low <= k <= q.high]
            assert len(hit) == q.expected_rows

    def test_zero_selectivity_selects_nothing(self):
        spec = TableSpec(rows=100)
        q = range_for_selectivity(spec, 0.0)
        assert q.expected_rows == 0
        assert not any(q.low <= k <= q.high for k in range(100))

    def test_with_key_step(self):
        spec = TableSpec(rows=50, key_step=4)
        q = range_for_selectivity(spec, 0.5)
        keys = [spec.key_start + i * 4 for i in range(50)]
        hit = [k for k in keys if q.low <= k <= q.high]
        assert len(hit) == 25

    def test_offset(self):
        spec = TableSpec(rows=100)
        q0 = range_for_selectivity(spec, 0.1, offset_rows=0)
        q1 = range_for_selectivity(spec, 0.1, offset_rows=50)
        assert q0.low != q1.low
        assert q1.expected_rows == q0.expected_rows == 10

    def test_offset_clamped(self):
        spec = TableSpec(rows=100)
        q = range_for_selectivity(spec, 0.9, offset_rows=99)
        assert q.expected_rows == 90  # clamped to fit

    def test_out_of_range_selectivity(self):
        with pytest.raises(ValueError):
            range_for_selectivity(TableSpec(rows=10), 1.2)


class TestQueryWorkload:
    def test_reproducible(self):
        spec = TableSpec(rows=100)
        w1 = list(QueryWorkload(spec, 0.2, seed=5).queries(10))
        w2 = list(QueryWorkload(spec, 0.2, seed=5).queries(10))
        assert w1 == w2

    def test_all_queries_hit_cardinality(self):
        spec = TableSpec(rows=200)
        for q in QueryWorkload(spec, 0.25, seed=1).queries(20):
            assert q.expected_rows == 50


class TestZipfWorkload:
    def test_ranks_deterministic_and_in_range(self):
        ranks = zipf_ranks(64, 500, theta=0.99, seed=7)
        assert ranks == zipf_ranks(64, 500, theta=0.99, seed=7)
        assert ranks != zipf_ranks(64, 500, theta=0.99, seed=8)
        assert all(0 <= r < 64 for r in ranks)

    def test_ranks_are_head_heavy(self):
        ranks = zipf_ranks(64, 2000, theta=0.99, seed=3)
        head = sum(1 for r in ranks if r < 8)
        # Under theta=0.99 the hottest 1/8 of ranks absorbs well over
        # its uniform share (would be 250 of 2000).
        assert head > 800

    def test_theta_zero_is_uniform(self):
        ranks = zipf_ranks(4, 4000, theta=0.0, seed=1)
        counts = [ranks.count(r) for r in range(4)]
        assert max(counts) - min(counts) < 400

    def test_ranks_validation(self):
        with pytest.raises(SchemaError):
            zipf_ranks(0, 10)

    def test_skewed_keys_unique_and_bounded(self):
        keys = skewed_insert_keys(120, 240, seed=23, buckets=64)
        assert len(keys) == len(set(keys)) == 120
        assert all(0 <= k < 240 for k in keys)
        assert keys == skewed_insert_keys(120, 240, seed=23, buckets=64)

    def test_skewed_keys_cluster_at_hot_buckets(self):
        keys = skewed_insert_keys(120, 240, theta=0.99, seed=23, buckets=64)
        low_half = sum(1 for k in keys if k < 120)
        assert low_half > 80  # hot buckets sit at the low end

    def test_full_domain_is_exactly_covered(self):
        keys = skewed_insert_keys(30, 30, seed=2, buckets=8)
        assert sorted(keys) == list(range(30))

    def test_key_start_offsets_domain(self):
        keys = skewed_insert_keys(10, 50, seed=4, key_start=1000)
        assert all(1000 <= k < 1050 for k in keys)

    def test_overdraw_rejected(self):
        with pytest.raises(SchemaError):
            skewed_insert_keys(31, 30)
