"""Tests for the benchmark series/formatting helpers."""

import csv
import os

from repro.bench.series import format_table, results_dir, write_csv


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_float_formatting(self):
        text = format_table(["v"], [(1_500_000.0,), (1234.0,), (0.123,), (0.0,)])
        assert "1.50M" in text
        assert "1,234" in text
        assert "0.123" in text

    def test_strings_pass_through(self):
        assert "hello" in format_table(["x"], [("hello",)])


class TestWriteCsv:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.series.results_dir", lambda: str(tmp_path)
        )
        path = write_csv("unit_test_series", ["x", "y"], [(1, 2), (3, 4)])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]

    def test_results_dir_exists(self):
        assert os.path.isdir(results_dir())
        assert results_dir().endswith(os.path.join("benchmarks", "results"))
