"""Tests for page geometry — formulas (6)-(8) and Figures 8-9 inputs."""

import pytest

from repro.db.page import PageGeometry
from repro.exceptions import PageGeometryError


class TestFanout:
    def test_paper_default_btree(self):
        """|B|=4096, |K|=16, |P|=4: f_B = (4096+16)/20 = 205."""
        g = PageGeometry.btree_default()
        assert g.internal_fanout() == 205

    def test_paper_default_vbtree(self):
        """|B|=4096, |K|=16, |P|=4, |D|=16: f_VB = 4112/36 = 114."""
        g = PageGeometry.vbtree_default()
        assert g.internal_fanout() == 114

    def test_vbtree_fanout_below_btree(self):
        for log_k in range(0, 9):
            k = 2**log_k
            b = PageGeometry(key_len=k, digest_len=0)
            vb = PageGeometry(key_len=k, digest_len=16)
            assert vb.internal_fanout() < b.internal_fanout()

    def test_fanout_decreases_with_key_length(self):
        fanouts = [
            PageGeometry(key_len=2**i).internal_fanout() for i in range(0, 9)
        ]
        assert fanouts == sorted(fanouts, reverse=True)

    def test_leaf_capacity(self):
        g = PageGeometry.vbtree_default()
        assert g.leaf_capacity() == 4096 // (16 + 4 + 16)

    def test_node_overhead(self):
        g = PageGeometry.vbtree_default()
        assert g.node_overhead_bytes() == g.internal_fanout() * 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(PageGeometryError):
            PageGeometry(block_size=0)
        with pytest.raises(PageGeometryError):
            PageGeometry(digest_len=-1)
        with pytest.raises(PageGeometryError):
            PageGeometry(block_size=8, key_len=16, pointer_len=4)


class TestHeight:
    def test_single_leaf(self):
        g = PageGeometry.btree_default()
        assert g.height_for(0) == 1
        assert g.height_for(1) == 1
        assert g.height_for(g.leaf_capacity()) == 1

    def test_two_levels(self):
        g = PageGeometry.btree_default()
        assert g.height_for(g.leaf_capacity() + 1) == 2

    def test_million_rows_paper_defaults(self):
        """At 1M rows the B-tree and VB-tree heights differ by <= 1
        (the paper's 'no material difference' claim, Figure 9)."""
        b = PageGeometry.btree_default().height_for(1_000_000)
        vb = PageGeometry.vbtree_default().height_for(1_000_000)
        assert abs(vb - b) <= 1
        assert 2 <= b <= 4

    def test_height_monotone_in_rows(self):
        g = PageGeometry.vbtree_default()
        heights = [g.height_for(n) for n in (1, 10**2, 10**4, 10**6, 10**8)]
        assert heights == sorted(heights)

    def test_height_monotone_in_key_len(self):
        heights = [
            PageGeometry(key_len=2**i).height_for(10**6) for i in range(0, 9)
        ]
        assert heights == sorted(heights)

    def test_negative_rows_rejected(self):
        with pytest.raises(PageGeometryError):
            PageGeometry().height_for(-1)


class TestEnvelopeHeight:
    def test_zero_results(self):
        assert PageGeometry().envelope_height_for(0) == 0

    def test_small_result_single_leaf(self):
        g = PageGeometry.vbtree_default()
        assert g.envelope_height_for(1) == 1
        assert g.envelope_height_for(g.leaf_capacity()) == 1

    def test_envelope_below_tree_height(self):
        g = PageGeometry.vbtree_default()
        assert g.envelope_height_for(1000) <= g.height_for(1_000_000)


class TestDerivedGeometries:
    def test_without_digests(self):
        vb = PageGeometry.vbtree_default()
        b = vb.without_digests()
        assert b.digest_len == 0
        assert b.block_size == vb.block_size
        assert b.internal_fanout() > vb.internal_fanout()
