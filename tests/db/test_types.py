"""Tests for the column type system."""

import pytest

from repro.db.types import (
    BlobType,
    BoolType,
    FloatType,
    IntType,
    VarcharType,
    type_from_name,
)
from repro.exceptions import SchemaError, TypeMismatchError


class TestIntType:
    def test_accepts_ints(self):
        t = IntType()
        assert t.validate(42) == 42
        assert t.validate(-(2**63)) == -(2**63)

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(True)

    def test_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(1.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(2**63)

    def test_width(self):
        assert IntType().byte_width() == 8

    def test_orderable(self):
        assert IntType().orderable


class TestFloatType:
    def test_accepts_and_coerces(self):
        t = FloatType()
        assert t.validate(1.5) == 1.5
        assert t.validate(2) == 2.0
        assert isinstance(t.validate(2), float)

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            FloatType().validate(False)

    def test_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            FloatType().validate("1.0")

    def test_width(self):
        assert FloatType().byte_width() == 8


class TestBoolType:
    def test_accepts_bool(self):
        assert BoolType().validate(True) is True

    def test_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            BoolType().validate(1)

    def test_width(self):
        assert BoolType().byte_width() == 1


class TestVarcharType:
    def test_accepts_within_capacity(self):
        assert VarcharType(capacity=5).validate("abcde") == "abcde"

    def test_rejects_too_long(self):
        with pytest.raises(TypeMismatchError):
            VarcharType(capacity=3).validate("abcd")

    def test_utf8_length_counts_bytes(self):
        with pytest.raises(TypeMismatchError):
            VarcharType(capacity=3).validate("héé")  # 5 utf-8 bytes

    def test_rejects_non_str(self):
        with pytest.raises(TypeMismatchError):
            VarcharType().validate(b"bytes")

    def test_fixed_width_is_capacity(self):
        assert VarcharType(capacity=20).byte_width() == 20

    def test_zero_capacity_rejected(self):
        with pytest.raises(SchemaError):
            VarcharType(capacity=0)

    def test_str_rendering(self):
        assert str(VarcharType(capacity=7)) == "VARCHAR(7)"


class TestBlobType:
    def test_accepts_bytes(self):
        assert BlobType(capacity=4).validate(b"\x00\x01") == b"\x00\x01"

    def test_accepts_bytearray(self):
        assert BlobType(capacity=4).validate(bytearray(b"ab")) == b"ab"

    def test_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            BlobType().validate("text")

    def test_rejects_oversize(self):
        with pytest.raises(TypeMismatchError):
            BlobType(capacity=2).validate(b"abc")

    def test_not_orderable(self):
        assert not BlobType().orderable


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("INT", IntType),
            ("integer", IntType),
            ("FLOAT", FloatType),
            ("double", FloatType),
            ("bool", BoolType),
            ("VARCHAR", VarcharType),
            ("BLOB", BlobType),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(type_from_name(name), cls)

    def test_capacity_passthrough(self):
        assert type_from_name("varchar", 12).capacity == 12
        assert type_from_name("blob", 99).capacity == 99

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            type_from_name("GEOMETRY")
