"""Tests for materialized join views (Section 3.3 join support)."""

import pytest

from repro.db.mview import MaterializedJoinView
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import IntType, VarcharType


@pytest.fixture
def orders():
    schema = TableSchema(
        "orders",
        (
            Column("order_id", IntType()),
            Column("cust_id", IntType()),
            Column("amount", IntType()),
        ),
        key="order_id",
    )
    t = Table(schema)
    t.insert((1, 10, 250))
    t.insert((2, 11, 100))
    t.insert((3, 10, 75))
    return t


@pytest.fixture
def customers():
    schema = TableSchema(
        "customers",
        (Column("cust_id", IntType()), Column("name", VarcharType(capacity=20))),
        key="cust_id",
    )
    t = Table(schema)
    t.insert((10, "alice"))
    t.insert((11, "bea"))
    t.insert((12, "carol"))
    return t


@pytest.fixture
def view(orders, customers):
    return MaterializedJoinView(
        "order_details", orders, customers, "cust_id", "cust_id"
    )


class TestMaterialization:
    def test_initial_contents(self, view):
        assert len(view) == 3
        rows = list(view.table.scan())
        names = {r["name"] for r in rows}
        assert names == {"alice", "bea"}

    def test_synthetic_key(self, view):
        keys = [r.key for r in view.table.scan()]
        assert keys == [0, 1, 2]
        assert view.schema.key == "view_id"

    def test_collision_renames(self, view):
        assert "customers_cust_id" in view.schema.column_names

    def test_key_to_key_join_uses_merge(self, orders, customers):
        # order_id joined to cust_id (both keys): nothing matches, but the
        # merge-join code path is exercised.
        v = MaterializedJoinView("x", orders, customers, "order_id", "cust_id")
        assert len(v) == 0

    def test_refresh_rebuilds(self, view, orders):
        orders.insert((4, 12, 10))
        assert len(view) == 3  # stale until maintained
        view.refresh()
        assert len(view) == 4


class TestIncrementalMaintenance:
    def test_left_insert(self, view, orders):
        row = orders.insert((4, 11, 400))
        added = view.on_left_insert(row)
        assert len(added) == 1
        assert added[0]["name"] == "bea"
        assert len(view) == 4

    def test_left_insert_no_match(self, view, orders):
        row = orders.insert((5, 999, 1))
        assert view.on_left_insert(row) == []
        assert len(view) == 3

    def test_right_insert(self, view, orders, customers):
        orders.insert((6, 13, 5))
        view.refresh()
        base = len(view)
        row = customers.insert((13, "dan"))
        added = view.on_right_insert(row)
        assert len(added) == 1
        assert len(view) == base + 1

    def test_left_delete(self, view, orders):
        row = orders.get(1)
        orders.delete(1)
        removed = view.on_left_delete(row)
        assert len(removed) == 1
        assert len(view) == 2

    def test_right_delete(self, view, customers):
        row = customers.get(10)
        customers.delete(10)
        removed = view.on_right_delete(row)
        assert len(removed) == 2  # alice had two orders
        assert len(view) == 1

    def test_incremental_matches_refresh(self, orders, customers):
        """After a burst of base-table changes, incremental maintenance
        and a from-scratch refresh agree on the multiset of rows."""
        v1 = MaterializedJoinView("v1", orders, customers, "cust_id", "cust_id")
        r1 = orders.insert((7, 12, 80))
        v1.on_left_insert(r1)
        r2 = customers.insert((14, "eve"))
        v1.on_right_insert(r2)
        old = orders.get(2)
        orders.delete(2)
        v1.on_left_delete(old)

        v2 = MaterializedJoinView("v2", orders, customers, "cust_id", "cust_id")
        strip = lambda rows: sorted(r.values[1:] for r in rows)
        assert strip(v1.table.scan()) == strip(v2.table.scan())
