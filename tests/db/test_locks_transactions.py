"""Tests for the lock manager and 2PL transactions."""

import pytest

from repro.db.locks import LockManager, LockMode
from repro.db.transactions import TransactionManager, TxnStatus
from repro.exceptions import DeadlockError, LockError, TransactionError


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire("t1", "r", LockMode.SHARED)
        assert lm.acquire("t2", "r", LockMode.SHARED)
        assert set(lm.holders("r")) == {"t1", "t2"}

    def test_exclusive_conflicts(self):
        lm = LockManager()
        assert lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        assert not lm.acquire("t2", "r", LockMode.SHARED)
        assert lm.is_waiting("t2")

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.acquire("t1", "r", LockMode.SHARED)
        assert not lm.acquire("t2", "r", LockMode.EXCLUSIVE)

    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        lm.acquire("t2", "r", LockMode.SHARED)
        woken = lm.release("t1", "r")
        assert woken == ["t2"]
        assert lm.mode_held("t2", "r") is LockMode.SHARED

    def test_fifo_ordering(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        lm.acquire("t2", "r", LockMode.EXCLUSIVE)
        lm.acquire("t3", "r", LockMode.EXCLUSIVE)
        assert lm.release("t1", "r") == ["t2"]
        assert lm.release("t2", "r") == ["t3"]

    def test_fifo_fairness_blocks_overtake(self):
        """A new shared request must queue behind a waiting exclusive."""
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.SHARED)
        lm.acquire("t2", "r", LockMode.EXCLUSIVE)  # waits
        assert not lm.acquire("t3", "r", LockMode.SHARED)  # must not overtake

    def test_reacquire_is_noop(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.SHARED)
        assert lm.acquire("t1", "r", LockMode.SHARED)
        assert lm.acquire("t1", "r", LockMode.SHARED)

    def test_x_covers_s(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        assert lm.acquire("t1", "r", LockMode.SHARED)
        assert lm.mode_held("t1", "r") is LockMode.EXCLUSIVE

    def test_upgrade_alone_succeeds(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.SHARED)
        assert lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        assert lm.mode_held("t1", "r") is LockMode.EXCLUSIVE

    def test_upgrade_waits_for_other_readers(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.SHARED)
        lm.acquire("t2", "r", LockMode.SHARED)
        assert not lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        woken = lm.release("t2", "r")
        assert woken == ["t1"]
        assert lm.mode_held("t1", "r") is LockMode.EXCLUSIVE

    def test_release_unheld_raises(self):
        lm = LockManager()
        with pytest.raises(LockError):
            lm.release("t1", "r")

    def test_release_all(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.SHARED)
        lm.acquire("t1", "b", LockMode.EXCLUSIVE)
        lm.acquire("t2", "b", LockMode.SHARED)
        woken = lm.release_all("t1")
        assert woken == ["t2"]
        assert lm.held_by("t1") == set()

    def test_release_all_drops_queued_requests(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        lm.acquire("t2", "r", LockMode.SHARED)
        lm.release_all("t2")
        assert not lm.is_waiting("t2")
        # t1 release should wake nobody.
        assert lm.release("t1", "r") == []


class TestDeadlockDetection:
    def test_two_party_deadlock(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        lm.acquire("t2", "b", LockMode.EXCLUSIVE)
        assert not lm.acquire("t1", "b", LockMode.SHARED)  # t1 waits on t2
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "a", LockMode.SHARED)  # closes the cycle

    def test_three_party_cycle(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        lm.acquire("t2", "b", LockMode.EXCLUSIVE)
        lm.acquire("t3", "c", LockMode.EXCLUSIVE)
        assert not lm.acquire("t1", "b", LockMode.EXCLUSIVE)
        assert not lm.acquire("t2", "c", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            lm.acquire("t3", "a", LockMode.EXCLUSIVE)

    def test_upgrade_deadlock(self):
        """Two readers both trying to upgrade deadlock each other."""
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.SHARED)
        lm.acquire("t2", "r", LockMode.SHARED)
        assert not lm.acquire("t1", "r", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "r", LockMode.EXCLUSIVE)

    def test_no_false_positive(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        lm.acquire("t2", "b", LockMode.EXCLUSIVE)
        assert not lm.acquire("t2", "a", LockMode.SHARED)  # chain, no cycle
        lm.release_all("t1")
        assert lm.mode_held("t2", "a") is LockMode.SHARED


class TestTransactions:
    def test_commit_releases_locks(self):
        tm = TransactionManager()
        t1 = tm.begin()
        assert t1.lock_exclusive("r")
        t2 = tm.begin()
        assert not t2.lock_shared("r")
        assert t2.status is TxnStatus.BLOCKED
        t1.commit()
        assert t2.status is TxnStatus.ACTIVE
        assert t2.holds("r") is LockMode.SHARED

    def test_finished_txn_rejects_operations(self):
        tm = TransactionManager()
        t1 = tm.begin()
        t1.commit()
        with pytest.raises(TransactionError):
            t1.lock_shared("r")
        with pytest.raises(TransactionError):
            t1.commit()
        with pytest.raises(TransactionError):
            t1.abort()

    def test_abort_runs_undo_in_reverse(self):
        tm = TransactionManager()
        t1 = tm.begin()
        log = []
        t1.on_abort(lambda: log.append("first"))
        t1.on_abort(lambda: log.append("second"))
        t1.abort()
        assert log == ["second", "first"]

    def test_commit_skips_undo(self):
        tm = TransactionManager()
        t1 = tm.begin()
        log = []
        t1.on_abort(lambda: log.append("undo"))
        t1.commit()
        assert log == []

    def test_active_count_and_get(self):
        tm = TransactionManager()
        t1 = tm.begin()
        assert tm.active_count() == 1
        assert tm.get(t1.txn_id) is t1
        t1.commit()
        assert tm.active_count() == 0
        with pytest.raises(TransactionError):
            tm.get(t1.txn_id)

    def test_deadlock_propagates(self):
        tm = TransactionManager()
        t1, t2 = tm.begin(), tm.begin()
        t1.lock_exclusive("a")
        t2.lock_exclusive("b")
        t1.lock_exclusive("b")
        with pytest.raises(DeadlockError):
            t2.lock_exclusive("a")
        # victim aborts; t1 gets the lock
        t2.abort()
        assert t1.status is TxnStatus.ACTIVE
        assert t1.holds("b") is LockMode.EXCLUSIVE
