"""Tests for the heap table and the relational operators."""

import pytest

from repro.db.executor import (
    Filter,
    IndexRangeScan,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    execute_to_list,
)
from repro.db.expressions import AlwaysTrue, Comparison, between
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import IntType, VarcharType
from repro.exceptions import (
    DuplicateKeyError,
    KeyNotFoundError,
    PlanningError,
)


@pytest.fixture
def users():
    schema = TableSchema(
        "users",
        (
            Column("id", IntType()),
            Column("name", VarcharType(capacity=20)),
            Column("dept", IntType()),
        ),
        key="id",
    )
    table = Table(schema, index_fanout_override=4)
    for i in range(20):
        table.insert((i, f"user{i}", i % 3))
    return table


@pytest.fixture
def depts():
    schema = TableSchema(
        "depts",
        (Column("dept_id", IntType()), Column("title", VarcharType(capacity=20))),
        key="dept_id",
    )
    table = Table(schema)
    for i, title in enumerate(["eng", "ops", "sales"]):
        table.insert((i, title))
    return table


class TestTable:
    def test_insert_get_len(self, users):
        assert len(users) == 20
        assert users.get(7)["name"] == "user7"
        assert 7 in users
        assert 99 not in users

    def test_duplicate_key(self, users):
        with pytest.raises(DuplicateKeyError):
            users.insert((7, "dup", 0))

    def test_delete(self, users):
        removed = users.delete(3)
        assert removed["name"] == "user3"
        assert 3 not in users
        with pytest.raises(KeyNotFoundError):
            users.delete(3)

    def test_update_in_place(self, users):
        updated = users.update(4, name="renamed")
        assert updated["name"] == "renamed"
        assert users.get(4)["name"] == "renamed"

    def test_update_key_change(self, users):
        users.update(4, id=100)
        assert 4 not in users
        assert users.get(100)["name"] == "user4"

    def test_update_key_conflict_restores(self, users):
        with pytest.raises(DuplicateKeyError):
            users.update(4, id=5)
        assert users.get(4)["name"] == "user4"  # unchanged

    def test_scan_order(self, users):
        keys = [row.key for row in users.scan()]
        assert keys == list(range(20))

    def test_select_uses_key_range(self, users):
        rows = list(users.select(between("id", 5, 8)))
        assert [r.key for r in rows] == [5, 6, 7, 8]

    def test_select_non_key(self, users):
        rows = list(users.select(Comparison("dept", "=", 1)))
        assert all(r["dept"] == 1 for r in rows)
        assert len(rows) == 7  # ids 1,4,7,10,13,16,19

    def test_data_bytes(self, users):
        assert users.data_bytes() == 20 * users.schema.tuple_width()

    def test_insert_many(self, users):
        n = users.insert_many([(100 + i, f"u{i}", 0) for i in range(5)])
        assert n == 5
        assert len(users) == 25


class TestScansAndFilters:
    def test_seq_scan(self, users):
        rows = execute_to_list(SeqScan(users))
        assert len(rows) == 20

    def test_index_range_scan(self, users):
        plan = IndexRangeScan(users, between("id", 3, 6))
        assert [r.key for r in plan.execute()] == [3, 4, 5, 6]

    def test_index_scan_requires_range(self, users):
        plan = IndexRangeScan(users, Comparison("id", "!=", 5))
        with pytest.raises(PlanningError):
            list(plan.execute())

    def test_filter(self, users):
        plan = Filter(SeqScan(users), Comparison("dept", "=", 0))
        rows = execute_to_list(plan)
        assert all(r["dept"] == 0 for r in rows)

    def test_explain_renders_tree(self, users):
        plan = Filter(SeqScan(users), Comparison("dept", "=", 0))
        text = plan.explain()
        assert "Filter" in text and "SeqScan(users)" in text


class TestProject:
    def test_project_columns(self, users):
        plan = Project(SeqScan(users), ("name",))
        rows = execute_to_list(plan)
        assert rows[0].schema.column_names == ("name",)
        assert rows[0]["name"] == "user0"

    def test_project_reorders(self, users):
        plan = Project(SeqScan(users), ("dept", "id"))
        assert execute_to_list(plan)[1].values == (1 % 3, 1)

    def test_unknown_column_rejected(self, users):
        with pytest.raises(PlanningError):
            Project(SeqScan(users), ("ghost",))


class TestJoins:
    def test_nested_loop_join(self, users, depts):
        plan = NestedLoopJoin(SeqScan(users), SeqScan(depts), "dept", "dept_id")
        rows = execute_to_list(plan)
        assert len(rows) == 20
        by_id = {r["id"]: r for r in rows}
        assert by_id[4]["title"] == "ops"  # dept 1

    def test_merge_join_matches_nested_loop(self, users, depts):
        nl = execute_to_list(
            NestedLoopJoin(SeqScan(users), SeqScan(depts), "id", "dept_id")
        )
        mj = execute_to_list(
            MergeJoin(SeqScan(users), SeqScan(depts), "id", "dept_id")
        )
        assert sorted(r.values for r in nl) == sorted(r.values for r in mj)

    def test_merge_join_duplicates(self):
        schema_a = TableSchema(
            "a", (Column("k", IntType()), Column("v", IntType())), key="k"
        )
        schema_b = TableSchema(
            "b", (Column("k2", IntType()), Column("w", IntType())), key="k2"
        )
        a = Table(schema_a)
        b = Table(schema_b)
        # join on non-key columns with duplicates
        a.insert((1, 7))
        a.insert((2, 7))
        b.insert((1, 7))
        b.insert((2, 7))
        rows = execute_to_list(MergeJoin(SeqScan(a), SeqScan(b), "v", "w"))
        assert len(rows) == 4  # 2x2 duplicate group

    def test_join_schema_collision_renamed(self, users):
        other = Table(
            TableSchema(
                "extra",
                (Column("id", IntType()), Column("score", IntType())),
                key="id",
            )
        )
        other.insert((1, 50))
        plan = NestedLoopJoin(SeqScan(users), SeqScan(other), "id", "id")
        rows = execute_to_list(plan)
        assert len(rows) == 1
        assert "extra_id" in rows[0].schema.column_names

    def test_join_empty_side(self, users):
        empty = Table(
            TableSchema(
                "e", (Column("dept_id", IntType()),), key="dept_id"
            )
        )
        plan = NestedLoopJoin(SeqScan(users), SeqScan(empty), "dept", "dept_id")
        assert execute_to_list(plan) == []
