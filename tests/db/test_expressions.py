"""Tests for predicates and key-range extraction."""

import pytest

from repro.db.expressions import (
    AlwaysTrue,
    And,
    Comparison,
    KeyRange,
    Not,
    Or,
    between,
)
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.exceptions import DatabaseError


@pytest.fixture
def schema():
    return TableSchema(
        "t",
        (Column("k", IntType()), Column("name", VarcharType(capacity=10))),
        key="k",
    )


def row(schema, k, name="x"):
    return Row(schema, (k, name))


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("=", 6, False),
            ("!=", 6, True),
            ("<", 6, True),
            ("<", 5, False),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 5, True),
            (">=", 6, False),
        ],
    )
    def test_evaluate(self, schema, op, value, expected):
        assert Comparison("k", op, value).evaluate(row(schema, 5)) is expected

    def test_string_comparison(self, schema):
        assert Comparison("name", "=", "x").evaluate(row(schema, 1, "x"))

    def test_unknown_op_rejected(self):
        with pytest.raises(DatabaseError):
            Comparison("k", "~", 1)

    def test_columns(self):
        assert Comparison("k", "=", 1).columns() == {"k"}


class TestKeyRangeExtraction:
    def test_equality(self):
        r = Comparison("k", "=", 5).key_range("k")
        assert (r.low, r.high) == (5, 5)
        assert r.low_inclusive and r.high_inclusive

    def test_bounds(self):
        assert Comparison("k", "<", 5).key_range("k") == KeyRange(
            high=5, high_inclusive=False
        )
        assert Comparison("k", ">=", 5).key_range("k") == KeyRange(low=5)

    def test_not_equal_gives_none(self):
        assert Comparison("k", "!=", 5).key_range("k") is None

    def test_other_column_unconstrained(self):
        r = Comparison("name", "=", "x").key_range("k")
        assert r == KeyRange()

    def test_and_intersects(self):
        pred = And(Comparison("k", ">=", 3), Comparison("k", "<", 9))
        r = pred.key_range("k")
        assert (r.low, r.high) == (3, 9)
        assert r.low_inclusive and not r.high_inclusive

    def test_contradiction_is_empty(self):
        pred = And(Comparison("k", ">", 5), Comparison("k", "<", 3))
        assert pred.key_range("k").empty

    def test_equal_bounds_exclusive_empty(self):
        pred = And(Comparison("k", ">", 5), Comparison("k", "<=", 5))
        assert pred.key_range("k").empty

    def test_or_hull(self):
        pred = Or(
            And(Comparison("k", ">=", 1), Comparison("k", "<=", 3)),
            And(Comparison("k", ">=", 7), Comparison("k", "<=", 9)),
        )
        r = pred.key_range("k")
        assert (r.low, r.high) == (1, 9)  # convex hull over-approximation

    def test_or_mixed_columns_gives_none(self):
        pred = Or(Comparison("k", "=", 1), Comparison("name", "=", "x"))
        assert pred.key_range("k") is None

    def test_not_on_key_gives_none(self):
        assert Not(Comparison("k", "=", 1)).key_range("k") is None

    def test_not_on_other_column_unconstrained(self):
        assert Not(Comparison("name", "=", "x")).key_range("k") == KeyRange()

    def test_between_helper(self, schema):
        pred = between("k", 2, 4)
        assert pred.evaluate(row(schema, 3))
        assert not pred.evaluate(row(schema, 5))
        r = pred.key_range("k")
        assert (r.low, r.high) == (2, 4)


class TestKeyRange:
    def test_contains(self):
        r = KeyRange(low=2, high=5, high_inclusive=False)
        assert not r.contains(1)
        assert r.contains(2)
        assert r.contains(4)
        assert not r.contains(5)

    def test_contains_unbounded(self):
        assert KeyRange().contains(123)

    def test_empty_contains_nothing(self):
        assert not KeyRange(empty=True).contains(0)

    def test_intersect_inclusivity_tightens(self):
        a = KeyRange(low=1, high=9)
        b = KeyRange(low=1, low_inclusive=False, high=9, high_inclusive=False)
        r = a.intersect(b)
        assert not r.low_inclusive and not r.high_inclusive


class TestBooleanCombinators:
    def test_and_or_not_evaluate(self, schema):
        p = (Comparison("k", ">", 2) & Comparison("k", "<", 8)) | Comparison(
            "k", "=", 100
        )
        assert p.evaluate(row(schema, 5))
        assert not p.evaluate(row(schema, 9))
        assert (~p).evaluate(row(schema, 9))

    def test_always_true(self, schema):
        assert AlwaysTrue().evaluate(row(schema, 1))
        assert AlwaysTrue().columns() == set()
        assert AlwaysTrue().key_range("k") == KeyRange()
