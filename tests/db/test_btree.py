"""Unit and property-based tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BPlusTree
from repro.db.page import PageGeometry
from repro.exceptions import DatabaseError, DuplicateKeyError, KeyNotFoundError


def small_tree(fanout=4) -> BPlusTree:
    return BPlusTree(min_fanout_override=fanout)


class TestBasicOperations:
    def test_empty_tree(self):
        t = small_tree()
        assert len(t) == 0
        assert t.height() == 1
        assert list(t.items()) == []
        assert 5 not in t

    def test_insert_get(self):
        t = small_tree()
        t.insert(1, "a")
        t.insert(2, "b")
        assert t.get(1) == "a"
        assert t.get(2) == "b"
        assert len(t) == 2

    def test_get_missing(self):
        t = small_tree()
        t.insert(1, "a")
        with pytest.raises(KeyNotFoundError):
            t.get(99)

    def test_duplicate_insert_rejected(self):
        t = small_tree()
        t.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            t.insert(1, "b")
        assert t.get(1) == "a"

    def test_overwrite(self):
        t = small_tree()
        t.insert(1, "a")
        t.insert(1, "b", overwrite=True)
        assert t.get(1) == "b"
        assert len(t) == 1

    def test_items_sorted(self):
        t = small_tree()
        for k in [5, 3, 8, 1, 9, 2, 7]:
            t.insert(k, str(k))
        assert [k for k, _ in t.items()] == [1, 2, 3, 5, 7, 8, 9]

    def test_delete(self):
        t = small_tree()
        for k in range(10):
            t.insert(k, k)
        t.delete(5)
        assert 5 not in t
        assert len(t) == 9
        with pytest.raises(KeyNotFoundError):
            t.delete(5)

    def test_delete_to_empty(self):
        t = small_tree()
        for k in range(20):
            t.insert(k, k)
        for k in range(20):
            t.delete(k)
        assert len(t) == 0
        t.validate()
        t.insert(1, "back")  # still usable
        assert t.get(1) == "back"

    def test_string_keys(self):
        t = small_tree()
        for name in ["pear", "apple", "fig", "mango"]:
            t.insert(name, name.upper())
        assert [k for k, _ in t.items()] == ["apple", "fig", "mango", "pear"]


class TestSplitsAndHeight:
    def test_splits_create_height(self):
        t = small_tree(fanout=4)
        for k in range(100):
            t.insert(k, k)
        assert t.height() >= 3
        t.validate()

    def test_geometry_drives_capacity(self):
        g = PageGeometry(block_size=128, key_len=8, pointer_len=4, digest_len=0)
        t = BPlusTree(geometry=g)
        assert t.max_children == (128 + 8) // 12
        assert t.leaf_capacity == 128 // 12

    def test_height_close_to_analytic(self):
        """The built tree's height matches the fully-packed analytic
        height within 1 level (splits leave nodes ~half full)."""
        g = PageGeometry(block_size=256, key_len=8, pointer_len=4, digest_len=0)
        t = BPlusTree(geometry=g)
        n = 5000
        for k in range(n):
            t.insert(k, None)
        analytic = g.height_for(n)
        assert analytic <= t.height() <= analytic + 1

    def test_fanout_override_validation(self):
        with pytest.raises(DatabaseError):
            BPlusTree(min_fanout_override=2)


class TestRangeScans:
    @pytest.fixture
    def tree(self):
        t = small_tree()
        for k in range(0, 100, 2):  # even keys 0..98
            t.insert(k, k * 10)
        return t

    def test_full_range(self, tree):
        assert len(list(tree.range_items())) == 50

    def test_closed_range(self, tree):
        items = list(tree.range_items(10, 20))
        assert [k for k, _ in items] == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        items = list(tree.range_items(10, 20, low_inclusive=False, high_inclusive=False))
        assert [k for k, _ in items] == [12, 14, 16, 18]

    def test_bounds_between_keys(self, tree):
        items = list(tree.range_items(9, 15))
        assert [k for k, _ in items] == [10, 12, 14]

    def test_open_low(self, tree):
        assert [k for k, _ in tree.range_items(high=6)] == [0, 2, 4, 6]

    def test_open_high(self, tree):
        assert [k for k, _ in tree.range_items(low=94)] == [94, 96, 98]

    def test_empty_range(self, tree):
        assert list(tree.range_items(11, 11)) == []

    def test_range_beyond_keys(self, tree):
        assert list(tree.range_items(1000, 2000)) == []


class TestTraceAndPaths:
    def test_insert_trace_path(self):
        t = small_tree()
        for k in range(50):
            trace = t.insert(k, k)
            assert trace.path[0] is t.root or len(trace.path) >= 1
            assert trace.modified

    def test_split_flag(self):
        t = small_tree(fanout=3)
        saw_split = False
        for k in range(30):
            trace = t.insert(k, k)
            if trace.created:
                assert trace.split
                saw_split = True
        assert saw_split

    def test_delete_trace_freed(self):
        t = small_tree(fanout=3)
        for k in range(9):
            t.insert(k, k)
        freed_any = False
        for k in range(9):
            trace = t.delete(k)
            freed_any = freed_any or bool(trace.freed)
        assert freed_any

    def test_path_to_leaf(self):
        t = small_tree(fanout=3)
        for k in range(30):
            t.insert(k, k)
        leaf = t.find_leaf(17)
        path = t.path_to(leaf)
        assert path[0] is t.root
        assert path[-1] is leaf
        assert len(path) == t.height()

    def test_io_accounting(self):
        t = small_tree(fanout=3)
        for k in range(100):
            t.insert(k, k)
        t.reset_io()
        t.get(50)
        assert t.io_reads == t.height()


class TestInvariantValidation:
    def test_validate_accepts_good_tree(self):
        t = small_tree()
        for k in random.Random(0).sample(range(1000), 300):
            t.insert(k, k)
        t.validate()

    def test_validate_catches_corruption(self):
        t = small_tree()
        for k in range(50):
            t.insert(k, k)
        leaf = t.find_leaf(10)
        leaf.keys.reverse()
        with pytest.raises(DatabaseError):
            t.validate()


@st.composite
def operation_sequences(draw):
    """Random interleavings of inserts and deletes over a small key space."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n):
        key = draw(st.integers(min_value=0, max_value=60))
        kind = draw(st.sampled_from(["insert", "delete"]))
        ops.append((kind, key))
    return ops


class TestPropertyBased:
    @given(operation_sequences(), st.integers(min_value=3, max_value=8))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_dict(self, ops, fanout):
        """The tree agrees with a dict + sorted() reference model after
        every operation, and invariants hold throughout."""
        tree = BPlusTree(min_fanout_override=fanout)
        model: dict[int, int] = {}
        for kind, key in ops:
            if kind == "insert":
                if key in model:
                    with pytest.raises(DuplicateKeyError):
                        tree.insert(key, key)
                else:
                    tree.insert(key, key)
                    model[key] = key
            else:
                if key in model:
                    tree.delete(key)
                    del model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        tree.delete(key)
        tree.validate()
        assert [k for k, _ in tree.items()] == sorted(model)
        assert len(tree) == len(model)

    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=300, unique=True),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_range_scan_matches_filter(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        tree = BPlusTree(min_fanout_override=5)
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _ in tree.range_items(low, high)]
        expected = sorted(k for k in keys if low <= k <= high)
        assert got == expected

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_insert_then_delete_all_returns_empty(self, keys):
        tree = BPlusTree(min_fanout_override=4)
        for k in keys:
            tree.insert(k, str(k))
        for k in keys:
            tree.delete(k)
        tree.validate()
        assert len(tree) == 0
        assert list(tree.items()) == []
