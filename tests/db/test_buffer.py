"""Tests for the LRU buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.buffer import BufferPool
from repro.exceptions import DatabaseError


class TestBasics:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity=2)
        assert pool.access("a") is False
        assert pool.access("a") is True
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        pool.access("a")
        pool.access("b")
        pool.access("a")      # a becomes MRU
        pool.access("c")      # evicts b (LRU)
        assert pool.contains("a")
        assert not pool.contains("b")
        assert pool.contains("c")
        assert pool.evictions == 1

    def test_capacity_respected(self):
        pool = BufferPool(capacity=3)
        for i in range(10):
            pool.access(i)
        assert pool.resident == 3

    def test_access_many(self):
        pool = BufferPool(capacity=4)
        misses = pool.access_many([1, 2, 1, 3, 2])
        assert misses == 3
        assert pool.hits == 2

    def test_hit_rate(self):
        pool = BufferPool(capacity=2)
        assert pool.hit_rate == 0.0
        pool.access("x")
        pool.access("x")
        assert pool.hit_rate == 0.5

    def test_reset_and_clear(self):
        pool = BufferPool(capacity=2)
        pool.access("x")
        pool.reset_stats()
        assert pool.misses == 0
        assert pool.contains("x")
        pool.clear()
        assert not pool.contains("x")
        assert pool.resident == 0

    def test_invalid_capacity(self):
        with pytest.raises(DatabaseError):
            BufferPool(capacity=0)


class TestProperties:
    @given(st.lists(st.integers(0, 20), max_size=200), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, trace, capacity):
        pool = BufferPool(capacity=capacity)
        for page in trace:
            pool.access(page)
        assert pool.resident <= capacity
        assert pool.hits + pool.misses == len(trace)
        assert pool.misses >= len(set(trace[:capacity] and trace)) > 0 if trace else True
        # Every distinct page faults at least once.
        assert pool.misses >= len(set(trace))

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_big_cache_never_evicts(self, trace):
        pool = BufferPool(capacity=10)  # > distinct pages
        for page in trace:
            pool.access(page)
        assert pool.evictions == 0
        assert pool.misses == len(set(trace))


class TestWithBTreeTrace:
    def test_hot_root_gets_cached(self):
        """Replaying point-lookup descents: the root is touched every
        query, so even a tiny buffer absorbs it."""
        from repro.db.btree import BPlusTree

        tree = BPlusTree(min_fanout_override=4)
        for k in range(200):
            tree.insert(k, k)
        pool = BufferPool(capacity=16)
        import random

        rng = random.Random(1)
        for _ in range(100):
            key = rng.randrange(200)
            leaf = tree.find_leaf(key)
            path = tree.path_to(leaf)
            pool.access_many(n.node_id for n in path)
        assert pool.hit_rate > 0.3  # root + hot internals
        # Scans with a cold, tiny buffer miss much more.
        cold = BufferPool(capacity=1)
        for leaf in tree.leaves():
            cold.access(leaf.node_id)
        assert cold.hit_rate == 0.0
