"""Tests for schemas, the catalog, and rows."""

import pytest

from repro.db.rows import Row
from repro.db.schema import Catalog, Column, TableSchema
from repro.db.types import BlobType, IntType, VarcharType
from repro.exceptions import SchemaError, TypeMismatchError


@pytest.fixture
def schema():
    return TableSchema(
        name="users",
        columns=(
            Column("id", IntType()),
            Column("name", VarcharType(capacity=20)),
            Column("age", IntType()),
        ),
        key="id",
    )


class TestTableSchema:
    def test_basic_properties(self, schema):
        assert schema.column_names == ("id", "name", "age")
        assert schema.num_columns == 3
        assert schema.key_index == 0
        assert isinstance(schema.key_type, IntType)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", (Column("a", IntType()), Column("a", IntType())), key="a"
            )

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", IntType()),), key="b")

    def test_blob_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", BlobType()),), key="a")

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (), key="a")

    def test_bad_identifiers_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("1bad", (Column("a", IntType()),), key="a")
        with pytest.raises(SchemaError):
            Column("has space", IntType())

    def test_column_lookup(self, schema):
        assert schema.column("name").type.capacity == 20
        assert schema.column_index("age") == 2
        with pytest.raises(SchemaError):
            schema.column("missing")
        with pytest.raises(SchemaError):
            schema.column_index("missing")

    def test_validate_row(self, schema):
        assert schema.validate_row((1, "ann", 30)) == (1, "ann", 30)

    def test_validate_row_arity(self, schema):
        with pytest.raises(TypeMismatchError):
            schema.validate_row((1, "ann"))

    def test_validate_row_types(self, schema):
        with pytest.raises(TypeMismatchError):
            schema.validate_row((1, 2, 3))

    def test_tuple_width(self, schema):
        assert schema.tuple_width() == 8 + 20 + 8

    def test_project(self, schema):
        sub = schema.project(["name", "id"])
        assert sub.column_names == ("name", "id")
        assert sub.key == "id"

    def test_project_without_key(self, schema):
        sub = schema.project(["name", "age"])
        assert sub.key == "name"


class TestCatalog:
    def test_register_and_get(self, schema):
        cat = Catalog("db")
        cat.register(schema)
        assert cat.get("users") is schema
        assert "users" in cat
        assert cat.table_names() == ["users"]

    def test_duplicate_rejected(self, schema):
        cat = Catalog("db")
        cat.register(schema)
        with pytest.raises(SchemaError):
            cat.register(schema)

    def test_missing_table(self):
        with pytest.raises(SchemaError):
            Catalog("db").get("ghost")

    def test_drop(self, schema):
        cat = Catalog("db")
        cat.register(schema)
        cat.drop("users")
        assert "users" not in cat
        with pytest.raises(SchemaError):
            cat.drop("users")

    def test_iteration(self, schema):
        cat = Catalog("db")
        cat.register(schema)
        assert list(cat) == [schema]


class TestRow:
    def test_construction_validates(self, schema):
        row = Row(schema, (1, "bob", 44))
        assert row.key == 1
        assert row["name"] == "bob"
        assert row[2] == 44
        with pytest.raises(TypeMismatchError):
            Row(schema, (1, "bob", "x"))

    def test_equality_and_hash(self, schema):
        a = Row(schema, (1, "bob", 44))
        b = Row(schema, (1, "bob", 44))
        assert a == b
        assert hash(a) == hash(b)

    def test_as_dict(self, schema):
        assert Row(schema, (1, "b", 2)).as_dict() == {"id": 1, "name": "b", "age": 2}

    def test_iteration_and_len(self, schema):
        row = Row(schema, (1, "b", 2))
        assert list(row) == [1, "b", 2]
        assert len(row) == 3

    def test_project(self, schema):
        row = Row(schema, (1, "b", 2)).project(["age", "name"])
        assert row.values == (2, "b")
        assert row.schema.column_names == ("age", "name")

    def test_replace(self, schema):
        row = Row(schema, (1, "b", 2)).replace(age=3)
        assert row["age"] == 3
        assert row["id"] == 1

    def test_byte_width(self, schema):
        assert Row(schema, (1, "b", 2)).byte_width() == schema.tuple_width()
