"""Suppression fixture: two annotated FL001 bends, one unannotated."""

from repro.crypto.signatures import DigestSigner  # fabriclint: disable=FL001

# fabriclint: disable=FL001
import repro.crypto.rsa


def forge(engine, value):
    return engine.sign(value)
