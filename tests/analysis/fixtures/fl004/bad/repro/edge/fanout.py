"""Known-bad FL004 (class scope): FanoutEngine blocks on the reactor.

The module-level helper below also sleeps, but it is NOT reactor code
— the rule must flag only the class body (scope precision is part of
what the fixture test asserts).
"""

import time


class FanoutEngine:
    def settle(self, lock):
        time.sleep(0.05)
        lock.wait()


def offline_helper():
    time.sleep(1.0)
