"""Known-bad FL004: blocking calls all over the reactor module."""

import subprocess
import time


def pump(sock, lock):
    time.sleep(0.1)
    data = sock.recv(4096)
    lock.acquire()
    subprocess.run(["true"])
    return data
