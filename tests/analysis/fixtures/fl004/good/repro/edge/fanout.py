"""Known-good FL004 (class scope): a reactor-safe FanoutEngine."""


class FanoutEngine:
    def settle(self, sock, done):
        try:
            chunk = sock.recv(65536)
        except BlockingIOError:
            return False
        return done.wait(0.01) and bool(chunk)
