"""Known-good FL004: provably non-blocking socket ops, timed waits."""


def pump(sock, lock):
    try:
        data = sock.recv(4096)
    except (BlockingIOError, InterruptedError):
        return b""
    if not lock.acquire(timeout=1.0):
        return b""
    try:
        return data
    finally:
        lock.release()
