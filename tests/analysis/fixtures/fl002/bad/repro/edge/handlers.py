"""Known-bad FL002: broad handlers that swallow errors silently."""


def pump(sock):
    try:
        sock.flush()
    except Exception:
        return None


def close_all(socks):
    for sock in socks:
        try:
            sock.close()
        except BaseException:
            continue


def read(sock):
    try:
        return sock.recv()
    except:
        return None
