"""Known-good FL002: narrow handlers, telemetry routing, re-raise."""

from repro.edge import telemetry


def pump(sock):
    try:
        sock.flush()
    except OSError:
        pass  # narrow best-effort flush: deliberate control flow
    except Exception as exc:
        telemetry.note("handlers.pump", exc)


def strict(sock):
    try:
        sock.flush()
    except Exception as exc:
        raise RuntimeError("flush failed") from exc
