"""Known-good FL003 (bench scope): wall clock for printed timings,
seeded RNG for everything that feeds a gated series."""

import random
import time


def bench(n, seed):
    rng = random.Random(seed)
    started = time.time()
    series = [rng.random() for _ in range(n)]
    return series, time.time() - started
