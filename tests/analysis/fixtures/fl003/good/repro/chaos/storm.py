"""Known-good FL003: seeded RNG instance, monotonic local deadline."""

import random
import time


def schedule(n, seed):
    rng = random.Random(seed)
    deadline = time.monotonic() + 1.0
    return [rng.randint(0, n) for _ in range(n)], deadline
