"""Known-bad FL003: wall clock and module-level RNG in a seeded path."""

import random
import time
from datetime import datetime
from random import shuffle


def schedule(n):
    started = time.time()
    stamp = datetime.now()
    random.shuffle(list(range(n)))
    return [random.randint(0, n) for _ in range(n)], started, stamp, shuffle
