"""Known-bad FL003 (bench scope): unseeded RNG is banned; wall-clock
timing is allowed here — benchmarks print timings, gated series are
deterministic counts."""

import random
import time


def bench(n):
    started = time.time()
    series = [random.random() for _ in range(n)]
    return series, time.time() - started
