"""Known-good FL005: routers read cursors, never write them."""


def lag(peer, table, head_lsn):
    acked = peer.acked_lsns.get(table, 0)
    return head_lsn - acked
