"""Known-good FL005: mutation confined to the three audited helpers."""


class FanoutEngine:
    def attach(self, peer, cursors):
        for table, (lsn, epoch) in cursors:
            peer.acked_lsns[table] = lsn
            peer.acked_epochs[table] = epoch

    def _advance_cursor(self, peer, table, lsn, epoch):
        current = peer.acked_lsns.get(table)
        if current is None or lsn > current:
            peer.acked_lsns[table] = lsn
            peer.acked_epochs[table] = epoch

    def _send_snapshot(self, peer, table):
        peer.acked_lsns.pop(table, None)
        peer.acked_epochs.pop(table, None)

    def progress(self, peer, table):
        return peer.acked_lsns.get(table)
