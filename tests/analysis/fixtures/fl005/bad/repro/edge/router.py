"""Known-bad FL005: a router must never touch replication cursors."""


def reset_route(peer, table):
    peer.acked_lsns.update({table: 0})
    peer.acked_epochs[table] = -1
