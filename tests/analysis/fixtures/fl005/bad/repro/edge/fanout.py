"""Known-bad FL005: cursor writes outside the monotonic helpers."""


class FanoutEngine:
    def on_ack(self, peer, table, lsn):
        peer.acked_lsns[table] = lsn
        peer.acked_epochs.pop(table, None)
        del peer.acked_lsns[table]


def rewind(peer, table):
    peer.acked_lsns[table] = 0
