"""Known-good FL001: the verify-only surface is all an edge needs."""

from repro.crypto.signatures import DigestVerifier, SignedDigest


def check(verifier: DigestVerifier, signed: SignedDigest, expected):
    return verifier.verify_value(signed, expected)
