"""Known-bad FL001: a verify-only module touching the signing surface."""

from repro.crypto.signatures import DigestSigner
import repro.crypto.rsa


def rotate_locally(keypair, engine, value):
    signer = DigestSigner(keypair.private, epoch=2)
    return signer, engine.sign(value)
