"""Tests pinning the analytical models to the paper's reported shapes
(DESIGN.md section 5's reproduction targets)."""

import pytest

from repro.analysis import (
    Parameters,
    delete_cost,
    delete_series,
    envelope_digests,
    fig10_series,
    fig11_series,
    fig12_series,
    fig13a_series,
    fig13b_series,
    fig8_series,
    fig9_series,
    insert_cost,
    naive_comm_cost,
    naive_comp_cost,
    storage_costs,
    vbtree_comm_cost,
    vbtree_comp_cost,
)


class TestParameters:
    def test_paper_defaults(self):
        p = Parameters()
        assert p.digest_len == 16
        assert p.key_len == 16
        assert p.block_size == 4096
        assert p.num_rows == 1_000_000
        assert p.num_cols == 10
        assert p.attr_size == 20

    def test_derived_costs(self):
        p = Parameters(x_ratio=10)
        assert p.cost_combine == pytest.approx(0.1)
        assert p.cost_verify == pytest.approx(10)
        assert p.cost_sign == pytest.approx(1000)

    def test_result_rows(self):
        p = Parameters()
        assert p.result_rows(0.0) == 0
        assert p.result_rows(0.2) == 200_000
        assert p.result_rows(1.0) == 1_000_000
        with pytest.raises(ValueError):
            p.result_rows(1.5)

    def test_with_(self):
        p = Parameters().with_(query_cols=3)
        assert p.query_cols == 3
        assert p.num_cols == 10


class TestFig8Fanout:
    def test_paper_default_values(self):
        rows = fig8_series()
        by_logk = {r[0]: r for r in rows}
        # |K| = 16 -> f_B = 205, f_VB = 114.
        assert by_logk[4][1] == 205
        assert by_logk[4][2] == 114

    def test_vbtree_always_below_btree(self):
        for _logk, f_b, f_vb in fig8_series():
            assert f_vb < f_b

    def test_fanout_monotone_decreasing(self):
        rows = fig8_series()
        assert [r[1] for r in rows] == sorted((r[1] for r in rows), reverse=True)
        assert [r[2] for r in rows] == sorted((r[2] for r in rows), reverse=True)

    def test_gap_shrinks_with_key_size(self):
        """Digest overhead dominates at small keys; the relative gap
        narrows as keys grow (Figure 8's converging curves)."""
        rows = fig8_series()
        ratio_small = rows[0][2] / rows[0][1]
        ratio_large = rows[-1][2] / rows[-1][1]
        assert ratio_large > ratio_small


class TestFig9Height:
    def test_no_material_difference(self):
        """Heights differ by at most one level across the sweep."""
        for _logk, h_b, h_vb in fig9_series():
            assert h_vb >= h_b
            assert h_vb - h_b <= 1

    def test_heights_in_paper_range(self):
        for _logk, h_b, h_vb in fig9_series():
            assert 2 <= h_b <= 8
            assert 2 <= h_vb <= 8


class TestStorage:
    def test_table_overhead(self):
        s = storage_costs(Parameters())
        assert s.table_digest_overhead == 1_000_000 * 10 * 16

    def test_vbtree_index_larger(self):
        s = storage_costs(Parameters())
        assert s.vbtree_index_bytes > s.btree_index_bytes
        assert s.vbtree_nodes > s.btree_nodes

    def test_node_overhead(self):
        s = storage_costs(Parameters())
        assert s.node_overhead_bytes == s.vbtree_fanout * 16


class TestFig10Communication:
    @pytest.mark.parametrize("qc", [2, 5, 8])
    def test_vbtree_below_naive_everywhere(self, qc):
        for sel, naive, vb in fig10_series(qc):
            if sel == 0:
                continue
            assert vb < naive, f"Qc={qc}, sel={sel}"

    def test_gap_is_per_tuple_signature(self):
        """Naive - VBtree ~= Q_r * |D| - envelope bytes."""
        p = Parameters().with_(query_cols=5)
        sel = 0.5
        qr = p.result_rows(sel)
        naive = naive_comm_cost(p, sel).total
        vb = vbtree_comm_cost(p, sel).total
        envelope = (envelope_digests(p, qr) + 1) * p.digest_len
        assert naive - vb == pytest.approx(qr * p.digest_len - envelope)

    def test_linear_in_selectivity(self):
        rows = fig10_series(5, selectivities=(0.2, 0.4, 0.8))
        naive = [r[1] for r in rows]
        vb = [r[2] for r in rows]
        assert naive[1] - naive[0] == pytest.approx(
            (naive[2] - naive[1]) / 2, rel=0.01
        )
        assert vb[1] - vb[0] == pytest.approx((vb[2] - vb[1]) / 2, rel=0.05)

    def test_magnitudes_match_paper_axes(self):
        """Figure 10's y-axis tops out around 200 MB at 100%."""
        for qc, expected_naive in [(2, 184e6), (5, 196e6), (8, 208e6)]:
            rows = fig10_series(qc, selectivities=(1.0,))
            assert rows[0][1] == pytest.approx(expected_naive, rel=0.01)

    def test_cost_rises_with_qc(self):
        at_80 = [fig10_series(qc, selectivities=(0.8,))[0] for qc in (2, 5, 8)]
        assert at_80[0][2] < at_80[1][2] < at_80[2][2]


class TestFig11AttrFactor:
    def test_absolute_gap_constant(self):
        """The paper: >= 3 MB gap at 20%, >= 12 MB at 80%, regardless of
        attribute size."""
        for _factor, entry in fig11_series():
            assert entry["naive(20%)"] - entry["vbtree(20%)"] >= 3e6
            assert entry["naive(80%)"] - entry["vbtree(80%)"] >= 12e6

    def test_relative_convergence(self):
        rows = fig11_series(attr_factors=(1, 6))
        small = rows[0][1]
        large = rows[1][1]
        ratio_small = small["naive(80%)"] / small["vbtree(80%)"]
        ratio_large = large["naive(80%)"] / large["vbtree(80%)"]
        assert ratio_large < ratio_small  # converging curves

    def test_costs_grow_with_attr_size(self):
        rows = fig11_series()
        vb = [e["vbtree(80%)"] for _f, e in rows]
        assert vb == sorted(vb)


class TestFig12Computation:
    @pytest.mark.parametrize("x", [5, 10, 100])
    def test_vbtree_below_naive(self, x):
        for sel, naive, vb in fig12_series(x):
            if sel == 0:
                continue
            assert vb < naive

    def test_gap_widens_with_x(self):
        gaps = []
        for x in (5, 10, 100):
            rows = fig12_series(x, selectivities=(0.8,))
            gaps.append(rows[0][1] - rows[0][2])
        assert gaps[0] < gaps[1] < gaps[2]

    def test_gap_is_per_tuple_decryption(self):
        p = Parameters().with_(x_ratio=10)
        sel = 0.4
        qr = p.result_rows(sel)
        naive = naive_comp_cost(p, sel)
        vb = vbtree_comp_cost(p, sel)
        ds = envelope_digests(p, qr)
        expected_gap = qr * p.cost_verify - (ds + 1) * p.cost_verify - (
            qr + ds + 1
        ) * p.cost_combine
        assert naive.total - vb.total == pytest.approx(expected_gap)

    def test_magnitudes_match_paper_axes(self):
        """Fig 12 y-axes: ~20e6 (X=5), ~25e6 (X=10), ~120e6 (X=100)."""
        naive_100 = {
            x: fig12_series(x, selectivities=(1.0,))[0][1] for x in (5, 10, 100)
        }
        assert 14e6 < naive_100[5] < 20e6
        assert 19e6 < naive_100[10] < 25e6
        assert 105e6 < naive_100[100] < 120e6

    def test_linear_in_selectivity(self):
        rows = fig12_series(10, selectivities=(0.25, 0.5, 1.0))
        vb = [r[2] for r in rows]
        assert vb[2] - vb[1] == pytest.approx(2 * (vb[1] - vb[0]), rel=0.05)


class TestFig13Sensitivity:
    def test_13a_gap_almost_constant(self):
        """The decryption gap dominates; Cost_c/Cost_a barely moves it."""
        rows = fig13a_series()
        gaps = [
            e["naive(80%)"] - e["vbtree(80%)"] for _r, e in rows
        ]
        assert max(gaps) - min(gaps) < 0.4 * max(gaps)

    def test_13a_costs_rise_with_ratio(self):
        rows = fig13a_series()
        vb = [e["vbtree(80%)"] for _r, e in rows]
        assert vb == sorted(vb)

    def test_13b_gap_constant_in_qc(self):
        rows = fig13b_series()
        gaps = [e["naive(80%)"] - e["vbtree(80%)"] for _qc, e in rows]
        assert max(gaps) - min(gaps) < 0.01 * max(gaps)

    def test_13b_gap_equals_qr_cost_v(self):
        p = Parameters().with_(x_ratio=10)
        rows = fig13b_series(params=p, query_cols_sweep=(5,))
        qr = p.result_rows(0.8)
        _qc, entry = rows[0]
        gap = entry["naive(80%)"] - entry["vbtree(80%)"]
        # Naive pays Q_r decryptions; VB pays envelope decryptions + folds.
        ds = envelope_digests(p, qr)
        expected = qr * p.cost_verify - (ds + 1) * p.cost_verify - (
            qr + ds + 1
        ) * p.cost_combine
        assert gap == pytest.approx(expected)


class TestUpdateCosts:
    def test_insert_cost_components(self):
        p = Parameters()
        cost = insert_cost(p)
        height = p.vbtree_geometry().height_for(p.num_rows)
        assert cost.hashes == 10
        assert cost.combines == 9 + height
        assert cost.signs == 11 + height

    def test_delete_more_expensive_than_insert(self):
        """'A tuple deletion transaction is more expensive to process'
        — in digest-maintenance terms (the signing column is dominated
        by insert's per-attribute signatures, which the naive store
        shares; the delete penalty is the recompute work)."""
        p = Parameters()
        ins = insert_cost(p, include_signing=False).total
        for n in (1, 100, 10_000):
            assert delete_cost(p, n, include_signing=False).total > ins

    def test_insert_signing_dominated_by_attribute_signatures(self):
        """With signing included, insert's N_c per-attribute signatures
        dominate — formula (11)'s signing column is mostly formula (1)
        work, not tree maintenance."""
        p = Parameters()
        with_s = insert_cost(p, include_signing=True).total
        without = insert_cost(p, include_signing=False).total
        assert (with_s - without) / p.cost_sign == pytest.approx(
            p.num_cols + 1 + p.vbtree_geometry().height_for(p.num_rows)
        )

    def test_delete_cost_grows_with_range(self):
        costs = [c for _n, c, _i in delete_series()]
        assert costs == sorted(costs)

    def test_delete_without_signing_cheaper(self):
        p = Parameters()
        assert (
            delete_cost(p, 100, include_signing=False).total
            < delete_cost(p, 100, include_signing=True).total
        )

    def test_envelope_height_bounded_by_tree(self):
        p = Parameters()
        g = p.vbtree_geometry()
        assert g.envelope_height_for(100) <= g.height_for(p.num_rows)
