"""fabriclint fixture tests: every rule fires on its known-bad tree at
exactly the expected lines, stays quiet on the known-good twin, and
disappears when the rule is unregistered — plus the escape hatches
(suppressions, baseline) and the CLI contract (``--self-test`` exits 1
by design: a gate that cannot fail gates nothing).
"""

import os
import subprocess
import sys

import pytest

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
TOOLS = os.path.join(ROOT, "tools")
FIXTURES = os.path.join(HERE, "fixtures")
RUN_PY = os.path.join(TOOLS, "fabriclint", "run.py")

if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)

from fabriclint.engine import (  # noqa: E402 - sys.path bootstrap above
    load_baseline,
    run_paths,
    run_source,
)
from fabriclint.rules import REGISTRY, all_rules  # noqa: E402

# Per rule: fixture path -> sorted finding lines the known-bad tree must
# produce (duplicates = two findings on one line).  These are asserted
# EXACTLY — a rule that drifts looser or stricter fails here first.
EXPECTED_BAD = {
    "FL001": {"repro/edge/edge_server.py": [3, 4, 8, 8, 9]},
    "FL002": {"repro/edge/handlers.py": [7, 15, 22]},
    "FL003": {
        # Chaos scope: clocks AND unseeded RNG banned.
        "repro/chaos/storm.py": [6, 10, 11, 12, 13],
        # Bench scope: only the RNG ban applies (time.time on lines
        # 10/12 is deliberately present and must NOT be flagged).
        "benchmarks/bench_demo.py": [11],
    },
    "FL004": {
        "repro/edge/event_loop.py": [3, 8, 9, 10, 11],
        # Class scope: module-level time.sleep on line 18 must NOT be
        # flagged — only FanoutEngine's body is reactor code.
        "repro/edge/fanout.py": [13, 14],
    },
    "FL005": {
        "repro/edge/fanout.py": [6, 7, 8, 12],
        "repro/edge/router.py": [5, 6],
    },
}

RULE_IDS = sorted(EXPECTED_BAD)


def _rule(rule_id):
    (rule,) = [r for r in REGISTRY if r.rule_id == rule_id]
    return rule


def _lines_by_path(findings):
    out = {}
    for f in findings:
        out.setdefault(f.path, []).append(f.line)
    return {path: sorted(lines) for path, lines in out.items()}


class TestFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_tree_exact_findings(self, rule_id):
        """The full registry over the known-bad tree yields exactly the
        expected (path, line) findings, all carrying this rule's id."""
        result = run_paths(
            all_rules(), os.path.join(FIXTURES, rule_id.lower(), "bad"), ["."]
        )
        assert result.parse_errors == []
        assert {f.rule for f in result.findings} == {rule_id}
        assert _lines_by_path(result.findings) == EXPECTED_BAD[rule_id]

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_tree_clean_under_every_rule(self, rule_id):
        result = run_paths(
            all_rules(), os.path.join(FIXTURES, rule_id.lower(), "good"), ["."]
        )
        assert result.parse_errors == []
        assert result.findings == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_tree_escapes_without_its_rule(self, rule_id):
        """Unregister the rule and its known-bad tree sails through —
        the fixture is caught by this rule and nothing else, so the
        test above genuinely covers it."""
        others = [r for r in REGISTRY if r.rule_id != rule_id]
        result = run_paths(
            others, os.path.join(FIXTURES, rule_id.lower(), "bad"), ["."]
        )
        assert result.findings == []


class TestSuppressions:
    def test_both_directive_forms(self):
        """Trailing directive covers its own line; comment-only
        directive covers the next line; the unannotated violation still
        fires."""
        result = run_paths(
            all_rules(), os.path.join(FIXTURES, "suppressed"), ["."]
        )
        assert [f.key for f in result.findings] == [
            "FL001:repro/edge/edge_server.py:10"
        ]
        assert sorted(f.line for f in result.suppressed) == [3, 6]

    def test_disable_all(self):
        source = (
            "from repro.crypto.signatures import DigestSigner"
            "  # fabriclint: disable=all\n"
        )
        assert run_source(all_rules(), "repro/edge/relay.py", source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = (
            "from repro.crypto.signatures import DigestSigner"
            "  # fabriclint: disable=FL002\n"
        )
        findings = run_source(all_rules(), "repro/edge/relay.py", source)
        assert [f.rule for f in findings] == ["FL001"]


class TestBaseline:
    def test_baselined_finding_does_not_fail_the_run(self):
        baseline = {"FL001:repro/edge/edge_server.py:3"}
        result = run_paths(
            [_rule("FL001")],
            os.path.join(FIXTURES, "fl001", "bad"),
            ["."],
            baseline=baseline,
        )
        assert [f.key for f in result.baselined] == sorted(baseline)
        assert result.stale_baseline == []
        # The other four findings stay actionable.
        assert len(result.findings) == 4

    def test_stale_baseline_entries_surface(self):
        baseline = {"FL001:repro/edge/edge_server.py:999"}
        result = run_paths(
            [_rule("FL001")],
            os.path.join(FIXTURES, "fl001", "bad"),
            ["."],
            baseline=baseline,
        )
        assert result.stale_baseline == sorted(baseline)

    def test_load_baseline_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("# header\n\nFL001:a.py:1\n  FL002:b.py:2  \n")
        assert load_baseline(str(path)) == {"FL001:a.py:1", "FL002:b.py:2"}

    def test_shipped_baseline_is_empty(self):
        """ISSUE 10 fixed the violations instead of grandfathering
        them; the committed baseline must stay empty."""
        shipped = os.path.join(TOOLS, "fabriclint", "baseline.txt")
        assert load_baseline(shipped) == set()


class TestRegistry:
    def test_registry_ids_and_fixture_coverage(self):
        ids = [r.rule_id for r in REGISTRY]
        assert ids == RULE_IDS  # FL001..FL005, sorted, no dupes
        for rule in REGISTRY:
            assert rule.title and rule.rationale
            bad_path, bad_src = rule.self_test_bad
            good_path, good_src = rule.self_test_good
            assert bad_path and bad_src and good_path and good_src
            for kind in ("bad", "good"):
                tree = os.path.join(FIXTURES, rule.rule_id.lower(), kind)
                assert os.path.isdir(tree), f"missing fixture tree {tree}"

    def test_finding_key_format(self):
        findings = run_paths(
            [_rule("FL002")], os.path.join(FIXTURES, "fl002", "bad"), ["."]
        ).findings
        assert findings[0].key == "FL002:repro/edge/handlers.py:7"


class TestCli:
    """Subprocess-level contract — exactly what CI runs."""

    @staticmethod
    def _run(*argv):
        return subprocess.run(
            [sys.executable, RUN_PY, *argv],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )

    def test_real_tree_is_clean(self):
        """The CI gate: the actual repo lints clean with the shipped
        (empty) baseline."""
        proc = self._run("src", "tools", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fabriclint: 0 finding(s)" in proc.stdout

    def test_self_test_exits_one_by_design(self):
        """Exit 1 is the PASSING outcome: every rule demonstrated its
        failing path.  Exit 0 would mean the self-test never proved
        anything; exit 2 means a dead rule."""
        proc = self._run("--self-test")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "self-test passed: all 5 rules can fail" in proc.stdout
        for rule_id in RULE_IDS:
            assert f"self-test {rule_id}" in proc.stdout

    def test_bad_fixture_fails_via_cli(self):
        proc = self._run(
            "--root",
            os.path.join(FIXTURES, "fl001", "bad"),
            "--no-baseline",
            ".",
        )
        assert proc.returncode == 1
        assert "FL001:repro/edge/edge_server.py:3" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule_id in RULE_IDS:
            assert rule_id in proc.stdout
