"""Relay tier: central egress scales with relay count, not edge count.

A flat deployment makes the central ship every signed frame once per
edge — egress grows linearly with n.  A relay tier (DESIGN.md §13)
interposes k unkeyed store-and-forward relays: the central ships each
frame once per *relay* and the relays re-fan-out the byte-identical
signed bytes, so central egress is a function of k alone.  This bench
measures exactly that with the deterministic in-process transports
(fixed seeds → byte-exact, CI-gateable numbers):

* ``flat`` rows — n edges attached directly; central delta egress is
  asserted exactly proportional to n (every edge receives the same
  coalesced byte stream).
* ``relay`` rows — k relays × (n/k) edges; central delta egress is
  asserted byte-identical across n at fixed k, and exactly
  proportional to k at fixed n.
* Byte parity — every snapshot/delta frame delivered to any edge in
  the relayed topology is byte-equal to a frame the central sent a
  relay (the relay adds, removes, and re-signs nothing).
* Verified queries — responses forwarded through a relay verify
  against the central's public key, including after a relay is
  "killed" (its server object discarded, store and all) and replaced
  by an empty restart that heals its subtree via snapshot: zero
  unverified results, byte parity still holds for the healed frames.

Frame counts ride along as the in-process proxy for send syscalls (the
reactor coalesces queued frames per connection, so frames-per-link is
the honest upper bound on sendmsg calls per link).

Gated by ``benchmarks/results/baselines/relay.json`` — central egress
bytes/frames and per-edge delivered bytes at the default ±10% (all
deterministic; wall-clock is deliberately not gated).
"""

import json
import os

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer, ReplicationMode
from repro.edge.edge_server import EdgeServer
from repro.edge.relay import RelayServer
from repro.edge.transport import (
    DeltaFrame,
    InProcessTransport,
    SnapshotFrame,
    config_from_frame,
    config_to_frame,
    frame_from_bytes,
    range_query_frame,
)
from repro.core.wire import result_from_bytes
from repro.workloads.generator import TableSpec, generate_table

TABLE = "items"
SEED_ROWS = 48
INSERTS = 30
COLUMNS = 3
RSA_BITS = 512
TREE_FANOUT = 6

FLAT_EDGES = (4, 8, 16)
#: (relays, edges) points: n varies at k=2 (egress must not move),
#: k varies at n=8 (egress must scale exactly with k).
RELAY_POINTS = ((1, 8), (2, 4), (2, 8), (2, 16), (4, 8))


def _make_central() -> CentralServer:
    # Lazy replication in both topologies: the workload commits, then
    # one propagate/drain ships coalesced deltas.  Eager mode would
    # hand the flat topology per-insert frames while the relay link
    # (remote-attached, drain-driven) coalesces regardless, and the
    # cross-topology byte comparison would measure coalescing policy
    # instead of fan-out degree.
    central = CentralServer(
        "relaybench",
        seed=29,
        rsa_bits=RSA_BITS,
        replication=ReplicationMode.LAZY,
    )
    schema, data = generate_table(
        TableSpec(name=TABLE, rows=SEED_ROWS, columns=COLUMNS, seed=11)
    )
    central.create_table(schema, data, fanout_override=TREE_FANOUT)
    return central


def _attach_relay(central, name, taps=None):
    """Central → relay link, mirroring the socket handshake; ``taps``
    (upstream_bytes, downstream_bytes) collect replication frames for
    the byte-parity assertion."""
    relay = RelayServer(name)
    up = InProcessTransport(name)
    if taps is None:
        up.connect(relay.handle_frame)
    else:
        upstream, _ = taps

        def tap(data):
            if isinstance(frame_from_bytes(data), (SnapshotFrame, DeltaFrame)):
                upstream.add(data)
            return relay.handle_frame(data)

        up.connect(tap)
    cfg = config_to_frame(
        central.edge_config(),
        ack_every=central.ack_every,
        ack_bytes=central.ack_bytes,
    )
    relay.adopt_config(cfg)
    sent_epoch = max((record[0] for record in cfg.epochs), default=-1)
    central.attach_remote_edge(name, up, config_epoch=sent_epoch)
    return relay, up


def _attach_edge(relay, name, taps=None):
    edge = EdgeServer(
        name=name, config=config_from_frame(relay.downstream_config_frame())
    )
    down = InProcessTransport(name)
    if taps is None:
        down.connect(edge.handle_frame)
    else:
        _, downstream = taps

        def tap(data):
            if isinstance(frame_from_bytes(data), (SnapshotFrame, DeltaFrame)):
                downstream.append(data)
            return edge.handle_frame(data)

        down.connect(tap)
    relay.attach_edge(name, down)
    return edge, down


def _tree_sync(central, relays, rounds=20) -> bool:
    """Drive central → relays → edges to quiescence, relaying each
    relay's spontaneous upstream acks by hand (the serve loop's job)."""
    for _ in range(rounds):
        central.propagate()
        central.fanout.drain(wait=True)
        for relay in relays:
            relay.fanout.pump()
            relay.fanout.drain(wait=True)
            frames = [frame_from_bytes(b) for b in relay.pending_upstream()]
            if frames:
                central.fanout._process_replies(
                    central.fanout.peer(relay.name), frames
                )
        settled = all(
            central.fanout.staleness(relay.name, t) == 0
            for relay in relays
            for t in central.vbtrees
        ) and all(
            relay.fanout.staleness(peer_name, t) == 0
            for relay in relays
            for peer_name in relay.fanout.peers
            for t in central.vbtrees
        )
        if settled:
            return True
    return False


def _workload(central) -> None:
    for i in range(INSERTS):
        key = 100_000 + i
        central.insert(TABLE, (key, f"v{i:>08}", f"w{i:>08}"))


def _link_stats(transports) -> tuple[int, int, int]:
    """(delta_bytes, delta_frames, total_down_bytes) over the links."""
    delta_bytes = delta_frames = total = 0
    for t in transports:
        for transfer in t.down_channel.transfers:
            total += transfer.nbytes
            if transfer.kind == "delta":
                delta_bytes += transfer.nbytes
                delta_frames += 1
    return delta_bytes, delta_frames, total


def _run_flat(edges: int) -> dict:
    central = _make_central()
    fleet = central.spawn_edge_fleet([f"edge-{i}" for i in range(edges)])
    links = [central.fanout.peer(e.name).transport for e in fleet]
    for link in links:
        link.down_channel.reset()

    _workload(central)
    central.propagate()
    central.fanout.drain(wait=True)
    assert all(
        central.fanout.staleness(e.name, TABLE) == 0 for e in fleet
    ), "flat topology failed to settle"

    delta_bytes, delta_frames, total = _link_stats(links)
    return {
        "topology": "flat",
        "relays": 0,
        "edges": edges,
        "inserts": INSERTS,
        "central_delta_bytes": delta_bytes,
        "central_delta_frames": delta_frames,
        "central_down_bytes": total,
        "edge_delivered_delta_bytes": delta_bytes // edges,
    }


def _run_relayed(relays: int, edges: int) -> dict:
    central = _make_central()
    upstream_frames: set = set()
    downstream_frames: list = []
    taps = (upstream_frames, downstream_frames)

    tiers = []
    uplinks = []
    per_relay = edges // relays
    for r in range(relays):
        relay, up = _attach_relay(central, f"relay-{r}", taps)
        fleet = [
            _attach_edge(relay, f"edge-{r}-{i}", taps)
            for i in range(per_relay)
        ]
        tiers.append((relay, fleet))
        uplinks.append(up)
    _tree_sync(central, [r for r, _ in tiers], rounds=4)  # bootstrap
    for up in uplinks:
        up.down_channel.reset()

    _workload(central)
    assert _tree_sync(
        central, [r for r, _ in tiers]
    ), "relayed topology failed to settle"

    # Byte parity: nothing an edge received was minted by the relay.
    assert downstream_frames, "no replication frames reached the edges"
    for data in downstream_frames:
        assert data in upstream_frames, (
            "edge received a frame the central never sent"
        )

    # Verified queries, round-robined by each relay over its edges.
    client = central.make_client()
    unverified = 0
    for (_relay, fleet), up in zip(tiers, uplinks, strict=True):
        for _ in range(len(fleet) + 1):
            reply = up.request(
                range_query_frame(TABLE, 100_000, 100_000 + INSERTS)
            )
            assert not reply.error, reply.error
            result = result_from_bytes(reply.payload)
            if not client.verify(result).ok:
                unverified += 1
            assert len(result.rows) == INSERTS
    assert unverified == 0, f"{unverified} unverified results through relays"

    delta_bytes, delta_frames, total = _link_stats(uplinks)
    down_delta = sum(
        transfer.nbytes
        for _, fleet in tiers
        for _, link in fleet
        for transfer in link.down_channel.transfers
        if transfer.kind == "delta"
    )
    return {
        "topology": "relay",
        "relays": relays,
        "edges": edges,
        "inserts": INSERTS,
        "central_delta_bytes": delta_bytes,
        "central_delta_frames": delta_frames,
        "central_down_bytes": total,
        "edge_delivered_delta_bytes": down_delta // edges,
    }


def _restart_heal_scenario() -> dict:
    """Kill-and-restart a relay (fresh empty store, same edges): the
    subtree heals via snapshot and every query verifies — the bench's
    hard-assert twin of the SIGKILL socket test."""
    central = _make_central()
    relay, up = _attach_relay(central, "relay-0")
    fleet = [_attach_edge(relay, f"edge-{i}") for i in range(2)]
    assert _tree_sync(central, [relay])
    _workload(central)
    assert _tree_sync(central, [relay])

    # SIGKILL: the relay object (store included) is gone.  The restart
    # registers empty over a fresh link (re-attaching the name replaces
    # the dead link); its edges re-dial it with their old replicas and
    # resume cursors, exactly like the socket path — so they must be
    # healed through the store's new chain.
    reborn, up2 = _attach_relay(central, "relay-0")
    for edge, _ in fleet:
        down = InProcessTransport(edge.name)
        down.connect(edge.handle_frame)
        reborn.attach_edge(edge.name, down, cursors=edge.replication_cursors())
    for i in range(INSERTS, INSERTS + 10):
        central.insert(TABLE, (100_000 + i, f"v{i:>08}", f"w{i:>08}"))
    assert _tree_sync(central, [reborn]), "subtree failed to heal"

    client = central.make_client()
    unverified = 0
    for _ in range(4):
        reply = up2.request(
            range_query_frame(TABLE, 100_000, 100_000 + INSERTS + 10)
        )
        assert not reply.error, reply.error
        result = result_from_bytes(reply.payload)
        if not client.verify(result).ok:
            unverified += 1
        assert len(result.rows) == INSERTS + 10
    assert unverified == 0, "unverified result after relay restart"
    return {"healed": True, "unverified": unverified}


def _merge_series(path: str, rows: list[dict]) -> list[dict]:
    """Merge rows into the results file keyed by topology point."""
    existing: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh).get("series", [])
        except (OSError, ValueError):
            existing = []
    key = ("topology", "relays", "edges")
    fresh = {tuple(r[k] for k in key) for r in rows}
    merged = [
        r for r in existing if tuple(r.get(k) for k in key) not in fresh
    ]
    merged.extend(rows)
    with open(path, "w") as fh:
        json.dump({"series": merged}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")
    return merged


def test_relay_egress(benchmark):
    """Central egress ∝ k (not n), byte parity through the relay tier,
    zero unverified results across normal serving and restart heal."""
    series = [_run_flat(n) for n in FLAT_EDGES]
    series += [_run_relayed(k, n) for k, n in RELAY_POINTS]
    heal = _restart_heal_scenario()
    assert heal["unverified"] == 0

    rows = {(r["topology"], r["relays"], r["edges"]): r for r in series}

    # Flat egress is exactly linear in n: one identical byte stream
    # per edge.
    flat4 = rows[("flat", 0, 4)]["central_delta_bytes"]
    for n in FLAT_EDGES:
        assert rows[("flat", 0, n)]["central_delta_bytes"] * 4 == flat4 * n

    # Relayed egress is a function of k alone: byte-identical across n
    # at fixed k, exactly linear in k at fixed n.
    k2 = {
        n: rows[("relay", 2, n)]["central_delta_bytes"] for n in (4, 8, 16)
    }
    assert len(set(k2.values())) == 1, f"egress moved with n: {k2}"
    per_relay = rows[("relay", 1, 8)]["central_delta_bytes"]
    for k in (1, 2, 4):
        assert (
            rows[("relay", k, 8)]["central_delta_bytes"] == per_relay * k
        ), "egress not linear in relay count"

    # The tier pays for itself once n > k: at 16 edges the relayed
    # central ships an 8th of the flat central's delta bytes.
    assert (
        rows[("relay", 2, 16)]["central_delta_bytes"] * 8
        == rows[("flat", 0, 16)]["central_delta_bytes"]
    )

    emit(
        "Relay tier: central delta egress vs topology",
        "relay",
        headers=(
            "topology", "relays", "edges", "central_delta_bytes",
            "central_delta_frames", "edge_delivered_delta_bytes",
        ),
        rows=[
            tuple(
                r[k]
                for k in (
                    "topology", "relays", "edges", "central_delta_bytes",
                    "central_delta_frames", "edge_delivered_delta_bytes",
                )
            )
            for r in series
        ],
    )
    _merge_series(os.path.join(results_dir(), "relay.json"), series)

    benchmark.pedantic(
        lambda: _run_relayed(2, 4), rounds=1, iterations=1
    )
