"""Figure 10 (a, b, c) — query communication cost vs selectivity,
Naive vs VB-tree, for Q_c in {2, 5, 8}.

Analytic series from formula (9) and the appendix formula at paper
scale (1M rows, 200-byte tuples), plus a measured series: real
serialized response sizes from the 5k-row deployment, same sweep."""

import pytest

from repro.analysis.communication import fig10_series
from repro.bench.series import emit
from repro.workloads.queries import range_for_selectivity

MEASURED_SELECTIVITIES = (0.05, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("qc", [2, 5, 8])
def test_fig10_analytic(benchmark, qc):
    rows = fig10_series(qc)
    emit(
        f"Figure 10({'abc'[[2, 5, 8].index(qc)]}): communication cost, Q_c = {qc} "
        "(bytes; N_r = 1M, 200 B tuples)",
        f"fig10_qc{qc}_analytic",
        ["selectivity %", "Naive", "VB-tree"],
        rows,
    )
    for sel, naive, vb in rows:
        if sel > 0:
            assert vb < naive  # VB-tree wins at every selectivity
    benchmark(fig10_series, qc)


@pytest.mark.parametrize("qc", [2, 5, 8])
def test_fig10_measured(benchmark, deployment, qc):
    """Measured serialized bytes from the running system (5k rows).

    Absolute values differ from the paper (real 512-bit signatures, not
    16 B digests) — the *shape* must hold: VB-tree below Naive at every
    selectivity, both linear, gap = Q_r per-tuple signatures."""
    central, edge, _client, spec = deployment
    columns = ("id", *(f"a{i}" for i in range(1, qc)))

    series = []

    def run_sweep():
        series.clear()
        for sel in MEASURED_SELECTIVITIES:
            q = range_for_selectivity(spec, sel)
            resp = edge.range_query("items", q.low, q.high, columns=columns)
            _naive, naive_bytes = edge.naive_range_query(
                "items", q.low, q.high, columns=columns
            )
            series.append((sel * 100, naive_bytes, resp.wire_bytes))
        return series

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        f"Figure 10 measured (5k rows, 512-bit RSA), Q_c = {qc}",
        f"fig10_qc{qc}_measured",
        ["selectivity %", "Naive bytes", "VB-tree bytes"],
        series,
    )
    for _sel, naive_bytes, vb_bytes in series:
        assert vb_bytes < naive_bytes
