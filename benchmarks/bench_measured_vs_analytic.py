"""Cross-validation: the running system against the Section-4 formulas.

The analytic models are evaluated with the *measured deployment's*
parameters (5k rows, real 514-byte signed digests) and compared with
what the system actually ships and computes.  Byte formulas should
match within the wire format's framing overhead; op-count formulas
within the envelope's boundary effects."""

import pytest

from repro.analysis.communication import naive_comm_cost, vbtree_comm_cost
from repro.analysis.computation import vbtree_comp_cost
from repro.analysis.params import Parameters
from repro.bench.series import emit
from repro.core.wire import wire_breakdown
from repro.crypto.meter import CostMeter
from repro.workloads.queries import range_for_selectivity

from conftest import MEASURED_ATTR, MEASURED_COLS, MEASURED_ROWS


def _measured_params(central) -> Parameters:
    sig_len = central.public_key.signature_len + 2  # signed-digest width
    return Parameters(
        digest_len=sig_len,
        num_rows=MEASURED_ROWS,
        num_cols=MEASURED_COLS,
        attr_size=MEASURED_ATTR + 5,  # canonical encoding: tag + length
    )


def test_comm_bytes_vs_formula(benchmark, deployment):
    central, edge, _client, spec = deployment
    params = _measured_params(central)
    sig_len = central.public_key.signature_len

    series = []

    def sweep():
        series.clear()
        for sel in (0.1, 0.3, 0.5, 0.8):
            q = range_for_selectivity(spec, sel)
            resp = edge.range_query("items", q.low, q.high)
            analytic = vbtree_comm_cost(params, sel).total
            series.append((sel * 100, analytic, resp.wire_bytes))
        return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Measured wire bytes vs formula (9) at deployment parameters",
        "measured_vs_analytic_comm",
        ["selectivity %", "formula bytes", "measured bytes"],
        series,
    )
    for _sel, analytic, measured in series:
        # Framing (keys, per-entry tags, headers) adds overhead; the
        # formula is the digest+data floor.  Within 35% is a match.
        assert measured == pytest.approx(analytic, rel=0.35)


def test_comm_breakdown_matches_components(benchmark, deployment):
    central, edge, _client, spec = deployment
    params = _measured_params(central)
    sig_len = central.public_key.signature_len
    sel = 0.4
    q = range_for_selectivity(spec, sel)
    resp = edge.range_query("items", q.low, q.high)
    breakdown = benchmark.pedantic(
        wire_breakdown, args=(resp.result, sig_len), rounds=1, iterations=1
    )
    analytic = vbtree_comm_cost(params, sel)
    emit(
        "Formula (9) components vs measured breakdown (sel 40%)",
        "measured_vs_analytic_breakdown",
        ["component", "formula", "measured"],
        [
            ("result data", analytic.data_bytes, breakdown["data"]),
            ("D_S + D_N", analytic.ds_bytes + analytic.dn_bytes,
             breakdown["ds"] + breakdown["dn"]),
            ("D_P", analytic.dp_bytes, breakdown["dp"]),
        ],
    )
    # D_S formula is an upper bound over the worst-case envelope.
    assert breakdown["ds"] + breakdown["dn"] <= (
        analytic.ds_bytes + analytic.dn_bytes
    )
    assert breakdown["dp"] == analytic.dp_bytes == 0


def test_verify_opcounts_vs_formula(benchmark, deployment):
    central, edge, _client, spec = deployment
    params = _measured_params(central)

    series = []

    def sweep():
        series.clear()
        for sel in (0.1, 0.3, 0.5, 0.8):
            q = range_for_selectivity(spec, sel)
            resp = edge.range_query("items", q.low, q.high)
            meter = CostMeter()
            client = central.make_client(meter=meter)
            assert client.verify(resp).ok
            analytic = vbtree_comp_cost(params, sel)
            series.append(
                (
                    sel * 100,
                    analytic.hashes,
                    meter.hashes,
                    analytic.decryptions,
                    meter.verifies,
                )
            )
        return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Client op-counts vs formula (10) at deployment parameters",
        "measured_vs_analytic_comp",
        ["sel %", "hashes (f)", "hashes (m)", "decrypts (f)", "decrypts (m)"],
        series,
    )
    for _sel, f_hash, m_hash, f_dec, m_dec in series:
        assert m_hash == f_hash            # exact: Q_r x Q_c hashes
        assert m_dec <= f_dec              # formula is the worst case


def test_naive_bytes_vs_formula(benchmark, deployment):
    central, edge, _client, spec = deployment
    params = _measured_params(central)
    sel = 0.4
    q = range_for_selectivity(spec, sel)

    def run():
        return edge.naive_range_query("items", q.low, q.high)

    _result, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = naive_comm_cost(params, sel).total
    print(f"\nnaive: formula={analytic:,.0f} measured={measured:,}")
    assert measured == pytest.approx(analytic, rel=0.35)
