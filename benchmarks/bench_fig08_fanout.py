"""Figure 8 — index tree fan-out vs key length (B-tree vs VB-tree).

Analytic series from formula (6) at paper defaults, cross-checked
against the fan-out the *built* trees actually get from the same page
geometry."""

from repro.analysis.storage import fig8_series
from repro.bench.series import emit
from repro.db.btree import BPlusTree
from repro.db.page import PageGeometry


def test_fig08_fanout(benchmark):
    rows = fig8_series()
    emit(
        "Figure 8: fan-out vs key length (|B|=4KiB, |P|=4, |D|=16)",
        "fig08_fanout",
        ["log2|K|", "B-tree fan-out", "VB-tree fan-out"],
        rows,
    )
    # Cross-check: a real tree built with the geometry carries exactly
    # the analytic capacity.
    for log_k, f_b, f_vb in rows:
        b = BPlusTree(geometry=PageGeometry(key_len=2**log_k, digest_len=0))
        vb = BPlusTree(geometry=PageGeometry(key_len=2**log_k, digest_len=16))
        assert b.max_children == f_b
        assert vb.max_children == f_vb
    benchmark(fig8_series)
