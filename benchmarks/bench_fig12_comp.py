"""Figure 12 (a, b, c) — query computation cost vs selectivity for
X = Cost_v/Cost_a in {5, 10, 100}.

Analytic series from formula (10) + the appendix formula, plus a
measured series: the client's actual operation counters (hashes,
combines, signature decryptions) from verifying real responses,
weighted with the same X — the running system producing the paper's
cost units."""

import pytest

from repro.analysis.computation import fig12_series
from repro.bench.series import emit
from repro.crypto.meter import CostMeter, CostWeights
from repro.workloads.queries import range_for_selectivity

MEASURED_SELECTIVITIES = (0.05, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("x", [5, 10, 100])
def test_fig12_analytic(benchmark, x):
    rows = fig12_series(x)
    emit(
        f"Figure 12({'abc'[[5, 10, 100].index(x)]}): computation cost, X = {x} "
        "(units of Cost_h; N_r = 1M)",
        f"fig12_x{x}_analytic",
        ["selectivity %", "Naive", "VB-tree"],
        rows,
    )
    for sel, naive, vb in rows:
        if sel > 0:
            assert vb < naive
    benchmark(fig12_series, x)


@pytest.mark.parametrize("x", [5, 10, 100])
def test_fig12_measured(benchmark, deployment, x):
    """Measured client op-counts from the 5k-row deployment, weighted
    at ratio X — same unit as the paper's y-axis."""
    central, edge, _client, spec = deployment
    weights = CostWeights(
        cost_hash=1.0, cost_combine=0.1, cost_verify=float(x), cost_sign=0.0
    )

    series = []

    def run_sweep():
        series.clear()
        for sel in MEASURED_SELECTIVITIES:
            q = range_for_selectivity(spec, sel)
            resp = edge.range_query("items", q.low, q.high)
            naive_result, _bytes = edge.naive_range_query("items", q.low, q.high)

            vb_client = central.make_client(meter=CostMeter())
            assert vb_client.verify(resp).ok
            vb_cost = vb_client.meter.cost(weights)

            naive_client = central.make_client(meter=CostMeter())
            assert naive_client.verify_naive(naive_result)
            naive_cost = naive_client.meter.cost(weights)

            series.append((sel * 100, naive_cost, vb_cost))
        return series

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        f"Figure 12 measured (5k rows, op counters), X = {x}",
        f"fig12_x{x}_measured",
        ["selectivity %", "Naive cost", "VB-tree cost"],
        series,
    )
    for _sel, naive_cost, vb_cost in series:
        assert vb_cost < naive_cost
