"""Socket transport: in-process vs loopback-TCP sync throughput.

The proof that the paper's architecture survives a real process
boundary: the same eager update workload is replicated to the same
edge fleet twice — once over the in-process transport, once to real
``python -m repro.edge.serve`` OS processes over loopback TCP — and
the series compares wall-clock sync time and replication bytes.

Because byte metering lives on the Transport ABC (both transports
record the identical serialized frames), the *delta bytes must match
exactly* across media; only wall-clock time may differ.  That equality
is asserted here and tracked by the regression gate
(``benchmarks/check_regression.py``) via
``benchmarks/results/socket_transport.json``.

Spawns subprocesses → marked ``socket`` (CI runs it in the
socket-integration job): ``pytest -m socket benchmarks/bench_socket_transport.py``.
"""

import json
import os
import time

import pytest

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer, ReplicationMode
from repro.edge.deploy import Deployment
from repro.workloads.generator import TableSpec, generate_table

EDGE_COUNTS = (1, 2, 4)
UPDATES = 8
ROWS = 300


def _make_central():
    central = CentralServer(
        db_name="socketbench",
        rsa_bits=512,
        seed=505,
        replication=ReplicationMode.EAGER,
    )
    spec = TableSpec(name="items", rows=ROWS, columns=5, seed=12)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    return central


def _run_updates(central) -> None:
    for i in range(UPDATES):
        central.insert("items", (50_000 + i, *["uu"] * 4))


def _replication_bytes(link) -> int:
    """Replication payload bytes (snapshots + deltas) on the link.

    Control frames (cursor probes the batched-ack settle may solicit —
    DESIGN.md section 10) are excluded: how many probe rounds a settle
    needs depends on ack arrival timing over a real socket, while the
    payload stream is byte-exact on every medium.
    """
    kinds = link.down_channel.bytes_by_kind()
    return kinds.get("snapshot", 0) + kinds.get("delta", 0)


def _inprocess_sync(n_edges: int) -> dict:
    central = _make_central()
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(n_edges)]
    links = [central.fanout.peer(e.name).transport for e in edges]
    for link in links:
        link.down_channel.reset()
    start = time.perf_counter()
    _run_updates(central)
    elapsed = time.perf_counter() - start
    assert all(central.staleness(e, "items") == 0 for e in edges)
    total = sum(_replication_bytes(link) for link in links)
    return {
        "transport": "inprocess",
        "edges": n_edges,
        "updates": UPDATES,
        "sync_seconds": elapsed,
        "replication_bytes": total,
        "bytes_per_edge": total // n_edges,
        "updates_per_second": UPDATES / elapsed,
    }


def _tcp_sync(n_edges: int) -> dict:
    central = _make_central()
    with Deployment(central) as deploy:
        names = [f"edge-{i}" for i in range(n_edges)]
        for name in names:
            deploy.launch_edge(name)
        for name in names:
            deploy.wait_for_edge(name)
        links = [deploy.edges[n].transport for n in names]
        for link in links:
            link.down_channel.reset()
        start = time.perf_counter()
        _run_updates(central)
        deploy.sync("items")
        elapsed = time.perf_counter() - start
        assert all(central.staleness(n, "items") == 0 for n in names)
        total = sum(_replication_bytes(link) for link in links)
    return {
        "transport": "tcp",
        "edges": n_edges,
        "updates": UPDATES,
        "sync_seconds": elapsed,
        "replication_bytes": total,
        "bytes_per_edge": total // n_edges,
        "updates_per_second": UPDATES / elapsed,
    }


@pytest.mark.socket
def test_socket_vs_inprocess_sync(benchmark):
    """Eager update sync across the fleet, per transport medium."""
    series = []
    for n in EDGE_COUNTS:
        series.append(_inprocess_sync(n))
        series.append(_tcp_sync(n))

    emit(
        "Sync throughput: in-process vs loopback TCP (eager, 8 updates)",
        "socket_transport",
        ["transport", "edges", "sync s", "upd/s", "bytes total", "bytes/edge"],
        [
            (s["transport"], s["edges"], round(s["sync_seconds"], 3),
             round(s["updates_per_second"], 1), s["replication_bytes"],
             s["bytes_per_edge"])
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "socket_transport.json")
    with open(path, "w") as fh:
        json.dump({"series": series}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")

    # The wire protocol is medium-independent: byte-identical delta
    # frames, metered identically on the shared Transport ABC.
    for n in EDGE_COUNTS:
        inproc = next(
            s for s in series
            if s["transport"] == "inprocess" and s["edges"] == n
        )
        tcp = next(
            s for s in series if s["transport"] == "tcp" and s["edges"] == n
        )
        assert tcp["replication_bytes"] == inproc["replication_bytes"], (
            f"byte accounting diverged at {n} edges: "
            f"tcp={tcp['replication_bytes']} "
            f"inprocess={inproc['replication_bytes']}"
        )
        # Wall-clock is reported but never asserted (the repo's
        # benchmark-gating policy: timing on shared runners is noise).
        ratio = tcp["sync_seconds"] / max(inproc["sync_seconds"], 1e-9)
        print(f"[{n} edges: loopback TCP sync {ratio:.1f}x in-process]")

    benchmark.pedantic(_inprocess_sync, args=(2,), rounds=1, iterations=1)
