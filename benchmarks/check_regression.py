"""Benchmark regression gate for CI.

Compares the JSON series the smoke benches write into
``benchmarks/results/`` against the committed baselines in
``benchmarks/results/baselines/`` and exits non-zero when a tracked
metric drifts outside its tolerance — in either direction: an
unexplained *improvement* usually means the workload changed, and the
baseline should be re-committed deliberately rather than silently.

Only deterministic metrics are gated by default (replication byte
counts — fixed seeds make them exactly reproducible); wall-clock series
are reported in the benches but deliberately **not** gated, CI timing
being far too noisy.  Where a throughput-derived metric *is* worth
gating (e.g. the sharding bench's speedup ratio, which is stable
because it is a ratio of same-machine measurements), the committed
baseline JSON can carry a top-level ``"tolerances"`` object mapping
metric name → relative tolerance, overriding the default per-metric
tolerance for that series only — loose bounds live next to the numbers
they qualify, not in code.

Usage::

    python benchmarks/check_regression.py                  # every baseline with a result
    python benchmarks/check_regression.py --only fanout_scale socket_transport
    python benchmarks/check_regression.py --self-test      # prove the gate can fail

To update a baseline intentionally: re-run the bench and copy the fresh
``benchmarks/results/<name>.json`` over
``benchmarks/results/baselines/<name>.json`` in the same PR as the
change that moved the numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_RESULTS = os.path.join(HERE, "results")
DEFAULT_BASELINES = os.path.join(DEFAULT_RESULTS, "baselines")


@dataclass(frozen=True)
class SeriesCheck:
    """What to gate in one results file.

    Attributes:
        key: Fields identifying a row within the series (join key
            between baseline and current run).
        metrics: ``metric name → relative tolerance`` (0.10 = ±10%).
    """

    key: tuple[str, ...]
    metrics: dict[str, float]


#: The gated series.  Timing fields are intentionally absent.
CHECKS: dict[str, SeriesCheck] = {
    "replication_bytes": SeriesCheck(
        key=("rows",),
        metrics={"clone_bytes": 0.10, "delta_bytes": 0.10},
    ),
    "fanout_scale": SeriesCheck(
        key=("mode", "edges"),
        metrics={"replication_bytes": 0.10, "bytes_per_edge": 0.10},
    ),
    "socket_transport": SeriesCheck(
        key=("transport", "edges"),
        metrics={"replication_bytes": 0.10, "bytes_per_edge": 0.10},
    ),
    "router": SeriesCheck(
        key=("scenario", "policy", "edges"),
        metrics={"query_bytes": 0.10, "payload_bytes": 0.10},
    ),
    # TCP rows deliberately omit `ack_frames` (probe rounds over a real
    # socket are timing-dependent); the deterministic in-process rows
    # gate the ack reduction, the bench itself asserts the TCP ratio.
    "ack_batching": SeriesCheck(
        key=("transport", "protocol"),
        metrics={
            "ack_frames": 0.10,
            "delta_frames": 0.10,
            "delta_bytes": 0.10,
        },
    ),
    # `speedup_vs_1shard` is wall-clock-derived but gated anyway: as a
    # ratio of same-machine, same-run measurements it tracks shard
    # balance, not host speed.  Its committed baseline carries a
    # "tolerances" override loosening the default ±10% — see the
    # module docstring.
    "sharding": SeriesCheck(
        key=("shards", "workload"),
        metrics={
            "replication_bytes": 0.10,
            "inserts": 0.10,
            "speedup_vs_1shard": 0.10,
        },
    ),
    # Relay-tier egress: every metric is a deterministic byte/frame
    # count over in-process links (fixed seeds), so the default ±10%
    # is generous; the bench itself asserts the exact scaling ratios.
    "relay": SeriesCheck(
        key=("topology", "relays", "edges"),
        metrics={
            "central_delta_bytes": 0.10,
            "central_delta_frames": 0.10,
            "edge_delivered_delta_bytes": 0.10,
        },
    ),
    # Chaos battery: every metric is a deterministic count (storms,
    # fleets, and query streams are pure functions of their seeds).
    # ``unverified`` is gated at zero tolerance — one unverified result
    # is the broken invariant, not a drift.  Detection latency is in
    # queries and recovery in pumps precisely so a slow CI host cannot
    # move them; any change is a behaviour change to re-baseline
    # deliberately.
    "chaos": SeriesCheck(
        key=("scenario",),
        metrics={
            "verified": 0.10,
            "unverified": 0.0,
            "rejections": 0.10,
            "detection_queries": 0.10,
            "recovery_pumps": 0.10,
        },
    ),
}


@dataclass
class Finding:
    """One metric comparison."""

    series: str
    row_key: tuple
    metric: str
    baseline: float
    current: float
    tolerance: float

    @property
    def deviation(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline

    @property
    def ok(self) -> bool:
        return abs(self.deviation) <= self.tolerance


def _load_payload(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload.get("series"), list):
        raise ValueError(f"{path}: no 'series' list")
    return payload


def _load_series(path: str) -> list[dict]:
    return _load_payload(path)["series"]


def _tolerance_overrides(payload: dict, name: str) -> dict[str, float]:
    """The baseline's per-metric tolerance overrides, validated."""
    overrides = payload.get("tolerances", {})
    if not isinstance(overrides, dict):
        raise ValueError(f"{name}: 'tolerances' must be an object")
    out: dict[str, float] = {}
    for metric, tolerance in overrides.items():
        if not isinstance(tolerance, (int, float)) or tolerance < 0:
            raise ValueError(
                f"{name}: tolerance override for {metric!r} must be a "
                f"non-negative number, got {tolerance!r}"
            )
        out[metric] = float(tolerance)
    return out


def _index(series: list[dict], key: tuple[str, ...]) -> dict[tuple, dict]:
    out: dict[tuple, dict] = {}
    for row in series:
        out[tuple(row.get(k) for k in key)] = row
    return out


def compare_series(
    name: str,
    baseline: list[dict],
    current: list[dict],
    check: SeriesCheck,
    overrides: dict[str, float] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Compare one series; returns (findings, structural errors).

    ``overrides`` (metric → tolerance, from the baseline JSON's
    ``"tolerances"`` object) replace the check's default tolerance per
    metric — the hook that lets a throughput-derived metric ride the
    same gate as byte-exact ones, just with honest bounds."""
    findings: list[Finding] = []
    errors: list[str] = []
    overrides = overrides or {}
    base_rows = _index(baseline, check.key)
    cur_rows = _index(current, check.key)
    for row_key, base_row in base_rows.items():
        cur_row = cur_rows.get(row_key)
        if cur_row is None:
            errors.append(f"{name}: row {row_key} missing from current run")
            continue
        for metric, tolerance in check.metrics.items():
            tolerance = overrides.get(metric, tolerance)
            if metric not in base_row:
                continue  # baseline predates the metric: nothing to gate
            if metric not in cur_row:
                errors.append(
                    f"{name}: row {row_key} lost metric {metric!r}"
                )
                continue
            findings.append(
                Finding(
                    series=name,
                    row_key=row_key,
                    metric=metric,
                    baseline=float(base_row[metric]),
                    current=float(cur_row[metric]),
                    tolerance=tolerance,
                )
            )
    return findings, errors


def run_checks(
    results_dir: str,
    baselines_dir: str,
    only: list[str] | None = None,
) -> int:
    """Gate every requested series; returns a process exit code."""
    names = only if only else sorted(CHECKS)
    all_findings: list[Finding] = []
    errors: list[str] = []
    checked = 0
    for name in names:
        check = CHECKS.get(name)
        if check is None:
            errors.append(f"unknown series {name!r} (gated: {sorted(CHECKS)})")
            continue
        base_path = os.path.join(baselines_dir, f"{name}.json")
        cur_path = os.path.join(results_dir, f"{name}.json")
        if not os.path.exists(base_path):
            if only:
                errors.append(f"{name}: no committed baseline at {base_path}")
            continue  # unrequested series without a baseline: skip quietly
        if not os.path.exists(cur_path):
            if only:
                errors.append(f"{name}: no current results at {cur_path} "
                              "(did the bench run?)")
            continue  # unrequested series without results: skip quietly
        base_payload = _load_payload(base_path)
        findings, errs = compare_series(
            name,
            base_payload["series"],
            _load_series(cur_path),
            check,
            overrides=_tolerance_overrides(base_payload, name),
        )
        all_findings.extend(findings)
        errors.extend(errs)
        checked += 1

    width = max(
        [len(f"{f.series} {f.row_key} {f.metric}") for f in all_findings],
        default=20,
    )
    for f in all_findings:
        label = f"{f.series} {f.row_key} {f.metric}"
        status = "ok" if f.ok else "REGRESSION"
        print(
            f"{label:<{width}}  baseline={f.baseline:>12.0f}  "
            f"current={f.current:>12.0f}  delta={f.deviation:+7.2%}  "
            f"(tol ±{f.tolerance:.0%})  {status}"
        )
    for message in errors:
        print(f"ERROR: {message}")

    failed = [f for f in all_findings if not f.ok]
    if checked == 0 and not errors:
        print("ERROR: nothing checked (no results matched any baseline)")
        return 1
    if failed or errors:
        print(
            f"\nregression gate FAILED: {len(failed)} metric(s) out of "
            f"tolerance, {len(errors)} error(s).  If the change is "
            "intentional, refresh benchmarks/results/baselines/."
        )
        return 1
    print(f"\nregression gate passed: {len(all_findings)} metric(s) "
          f"across {checked} series within tolerance")
    return 0


def self_test() -> int:
    """Prove the gate detects a perturbed baseline (used by CI)."""
    baseline = [
        {"mode": "eager", "edges": 4, "replication_bytes": 10_000,
         "bytes_per_edge": 2_500},
    ]
    check = CHECKS["fanout_scale"]

    same, errs = compare_series("fanout_scale", baseline, baseline, check)
    if errs or not same or not all(f.ok for f in same):
        print("self-test FAILED: identical series did not pass")
        return 1

    perturbed = [dict(baseline[0], replication_bytes=12_001)]  # +20%
    findings, _ = compare_series("fanout_scale", baseline, perturbed, check)
    if all(f.ok for f in findings):
        print("self-test FAILED: +20% drift slipped through a ±10% gate")
        return 1

    missing, errs = compare_series("fanout_scale", baseline, [], check)
    if not errs:
        print("self-test FAILED: vanished rows not reported")
        return 1

    loose, _ = compare_series(
        "fanout_scale", baseline, perturbed, check,
        overrides={"replication_bytes": 0.50},
    )
    if not all(f.ok for f in loose):
        print("self-test FAILED: ±50% override did not admit a +20% drift")
        return 1
    if any(
        f.metric == "bytes_per_edge" and f.tolerance != 0.10 for f in loose
    ):
        print("self-test FAILED: override leaked onto an unrelated metric")
        return 1

    print("self-test passed: gate accepts identical series, rejects "
          "perturbed/missing ones, and honors tolerance overrides")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--results", default=DEFAULT_RESULTS)
    parser.add_argument("--baselines", default=DEFAULT_BASELINES)
    parser.add_argument(
        "--only", nargs="+", metavar="SERIES",
        help="gate only these series (and fail if their results are absent)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate itself can fail, then exit",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return run_checks(args.results, args.baselines, args.only)


if __name__ == "__main__":
    sys.exit(main())
