"""Router bench: throughput and latency vs. edge count and policy.

A fleet of in-process edges with **deterministic** per-link latency
models (the channel rtt/bandwidth math — DESIGN.md section 9) serves a
seeded range-query workload through the :class:`VerifyingRouter`.  The
last edge is always *slow* (10× the rtt) and *stale* (its replication
link holds frames, so its cursor lags the delta log), which is exactly
the edge a latency- or freshness-aware policy should route around.

Two scenarios:

* ``slow_stale`` — policy × edge-count sweep; asserts the policy
  choice measurably shifts p99 latency (round-robin keeps hitting the
  slow edge, lowest-latency stops after one probe).
* ``adversary`` — the PR's acceptance fabric: 3 edges, one tampering,
  one slow/stale, 500 queries; asserts 100 % verified ACCEPTs, zero
  failed queries, the tampered edge quarantined, and the p99 shift.

Byte series (query + response payload bytes, exactly reproducible from
the seeds) land in ``benchmarks/results/router.json`` and are gated by
``check_regression.py``; latency percentiles are simulated seconds
(deterministic too, but not gated — they gate behaviour via the
assertions instead).  Wall-clock throughput is reported, never gated.
"""

import json
import math
import os
import time

from repro.bench.series import emit, results_dir
from repro.edge.adversary import ValueTamper
from repro.edge.central import CentralServer
from repro.edge.network import Channel
from repro.edge.router import TransportQueryChannel
from repro.edge.transport import InProcessTransport
from repro.workloads.generator import TableSpec, generate_table
from repro.workloads.queries import QueryWorkload

POLICIES = ("round_robin", "lowest_latency", "freshest", "weighted")
EDGE_COUNTS = (2, 4, 8)
QUERIES = 200
ROWS = 240
SELECTIVITY = 0.05
FAST_RTT = 0.02   # the Channel default: an edge-era WAN link
SLOW_RTT = 0.20   # the injected slow edge
STALE_UPDATES = 6

SPEC = TableSpec(name="items", rows=ROWS, columns=5, seed=21)


def _fabric(n_edges: int):
    """Central + ``n_edges`` in-process edges; the last edge is slow
    (10× rtt on its query link) and stale (replication held across
    ``STALE_UPDATES`` inserts, so its cursor lags the log)."""
    central = CentralServer(db_name="routerbench", rsa_bits=512, seed=808)
    schema, rows = generate_table(SPEC)
    central.create_table(schema, rows)
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(n_edges)]
    central.fanout.peer(edges[-1].name).transport.faults.hold = True
    for i in range(STALE_UPDATES):
        central.insert("items", (50_000 + i, *["uu"] * 4))
    channels = []
    for i, edge in enumerate(edges):
        rtt = SLOW_RTT if i == n_edges - 1 else FAST_RTT
        link = InProcessTransport(
            edge.name, Channel(rtt_seconds=rtt), Channel(rtt_seconds=rtt)
        )
        link.connect(edge.handle_frame)
        channels.append(TransportQueryChannel(edge.name, link))
    return central, edges, channels


def _pct(samples, q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


def _query_bytes(channels) -> tuple[int, int]:
    down = sum(
        ch.transport.down_channel.bytes_by_kind().get("query", 0)
        for ch in channels
    )
    up = sum(
        ch.transport.up_channel.bytes_by_kind().get("payload", 0)
        for ch in channels
    )
    return down, up


def _run(policy: str, n_edges: int, queries: int, tamper: bool = False) -> dict:
    central, edges, channels = _fabric(n_edges)
    if tamper:
        # Tampered keys every 10 apart: every query window (12 rows at
        # 5 % selectivity) covers at least one, so the tampering edge's
        # first served result REJECTs deterministically.
        for key in range(0, ROWS, 10):
            ValueTamper(
                table="items", key=key, column="a1", new_value="evil"
            ).apply(edges[min(1, n_edges - 1)])
    verifying = central.make_router(channels=channels, policy=policy)
    workload = QueryWorkload(spec=SPEC, selectivity=SELECTIVITY, seed=33)
    latencies = []
    start = time.perf_counter()
    for frame in workload.request_frames(queries):
        response = verifying.query(frame)
        assert response.verdict.ok
        latencies.append(response.latency)
    elapsed = time.perf_counter() - start
    down, up = _query_bytes(channels)
    slow_served = verifying.stats()[edges[-1].name].served
    stale_lag = central.staleness(edges[-1].name, "items")
    return {
        "scenario": "adversary" if tamper else "slow_stale",
        "policy": policy,
        "edges": n_edges,
        "queries": queries,
        "queries_per_second": queries / elapsed,
        "p50_latency_s": _pct(latencies, 0.50),
        "p99_latency_s": _pct(latencies, 0.99),
        "slow_edge_served": slow_served,
        "stale_edge_lag_lsns": stale_lag,
        "query_bytes": down,
        "payload_bytes": up,
        "accepts": verifying.accepts,
        "rejects": verifying.rejects,
        "failed_queries": verifying.router.failed_queries,
        "quarantined": sorted(
            name for name, s in verifying.stats().items() if s.quarantined
        ),
    }


def _emit_series(series: list[dict]) -> None:
    emit(
        "Verified query routing: p50/p99 latency and bytes by policy",
        "router",
        ["scenario", "policy", "edges", "q/s", "p50 s", "p99 s",
         "slow served", "query B", "payload B"],
        [
            (s["scenario"], s["policy"], s["edges"],
             round(s["queries_per_second"], 1),
             round(s["p50_latency_s"], 4), round(s["p99_latency_s"], 4),
             s["slow_edge_served"], s["query_bytes"], s["payload_bytes"])
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "router.json")
    with open(path, "w") as fh:
        json.dump({"series": series}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")


def test_router_policy_sweep(benchmark):
    """Policy × edge-count sweep under one slow/stale edge: the policy
    choice must measurably shift tail latency."""
    series = [
        _run(policy, n, QUERIES)
        for policy in POLICIES
        for n in EDGE_COUNTS
    ]

    for s in series:
        # Every run is fully verified and the stale edge really lags.
        assert s["accepts"] == QUERIES and s["failed_queries"] == 0
        assert s["stale_edge_lag_lsns"] == STALE_UPDATES

    for n in EDGE_COUNTS:
        by = {s["policy"]: s for s in series if s["edges"] == n}
        # Round-robin hits the slow edge 1/n of the time, so its p99 is
        # the slow round-trip; lowest-latency probes it once and then
        # routes around it — the issue's "measurable p99 shift".
        assert by["round_robin"]["p99_latency_s"] > 2 * SLOW_RTT
        assert by["lowest_latency"]["p99_latency_s"] < 2 * SLOW_RTT
        assert (
            by["round_robin"]["p99_latency_s"]
            > 3 * by["lowest_latency"]["p99_latency_s"]
        )
        # Freshest never serves from the stale edge after probing it.
        assert by["freshest"]["slow_edge_served"] <= 1
        # Weighted de-prioritizes but does not starve the slow edge.
        assert 0 < by["weighted"]["slow_edge_served"] < QUERIES // n

    _emit_series(series)
    benchmark.pedantic(
        _run, args=("lowest_latency", 2, 50), rounds=1, iterations=1
    )


def test_router_verify_or_failover_acceptance(benchmark):
    """The PR acceptance scenario: a 3-edge fabric with one tampering
    edge and one slow/stale edge serves a 500-query workload through
    the VerifyingRouter with 100 % verified-ACCEPT results and the
    tampered edge quarantined."""
    runs = {
        policy: _run(policy, 3, 500, tamper=True)
        for policy in ("round_robin", "lowest_latency")
    }
    for s in runs.values():
        assert s["accepts"] == 500, "every query must return a verified ACCEPT"
        assert s["failed_queries"] == 0
        assert s["rejects"] >= 1
        assert s["quarantined"] == ["edge-1"], "tampering edge quarantined"
    # With the tampered edge quarantined, round-robin is left splitting
    # traffic with the slow edge; lowest-latency routes around it — the
    # policy choice shifts p99 even in the adversarial fabric.
    assert (
        runs["round_robin"]["p99_latency_s"]
        > 3 * runs["lowest_latency"]["p99_latency_s"]
    )

    emit(
        "Verify-or-failover acceptance (3 edges: 1 tampered, 1 slow/stale)",
        "router_adversary",
        ["policy", "accepts", "rejects", "quarantined", "p99 s"],
        [
            (s["policy"], s["accepts"], s["rejects"],
             ",".join(s["quarantined"]), round(s["p99_latency_s"], 4))
            for s in runs.values()
        ],
    )
    benchmark.pedantic(
        _run, args=("lowest_latency", 3, 50, True), rounds=1, iterations=1
    )
