"""Section 4.4 — update costs (formulas 11 and 12).

The paper analyses insert/delete maintenance cost but plots no figure;
this bench generates the implied table and measures the real system:
wall-clock + operation counts for inserts (the cheap commutative fold)
and range deletes (X-lock + recompute), including the FLATTENED vs
NESTED policy ablation the paper's "minimal effect on other digests"
claim rests on."""

import pytest

from repro.analysis.params import Parameters
from repro.analysis.updates import delete_series, insert_cost
from repro.bench.series import emit
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.update import AuthenticatedUpdater
from repro.core.vbtree import VBTree
from repro.crypto.meter import CostMeter
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType


def test_update_costs_analytic(benchmark):
    p = Parameters()
    rows = delete_series(p)
    emit(
        "Formulas 11-12: update costs (units of Cost_h; N_r = 1M)",
        "update_costs_analytic",
        ["deleted rows Q_r", "delete cost", "insert cost (ref)"],
        rows,
    )
    costs = [c for _n, c, _i in rows]
    assert costs == sorted(costs)
    benchmark(delete_series, p)


def _build_tree(policy: DigestPolicy, n: int, meter: CostMeter | None = None):
    schema = TableSchema(
        "upd",
        (
            Column("id", IntType()),
            Column("a", VarcharType(capacity=20)),
            Column("b", VarcharType(capacity=20)),
        ),
        key="id",
    )
    keypair = generate_keypair(bits=512, seed=7)
    engine = DigestEngine("benchdb", policy=policy, meter=meter or CostMeter())
    signing = SigningDigestEngine(engine, DigestSigner.from_keypair(keypair))
    rows = [Row(schema, (i * 2, f"v{i}", f"w{i}")) for i in range(n)]
    tree = VBTree.build(schema, rows, signing, fanout_override=16)
    return schema, tree


@pytest.mark.parametrize("policy", [DigestPolicy.FLATTENED, DigestPolicy.NESTED])
def test_insert_measured(benchmark, policy):
    """The paper's cheap insert only exists under FLATTENED: one
    combine per path node vs a full recompute per ancestor under
    NESTED.  Measured combine counts prove it."""
    schema, tree = _build_tree(policy, 2_000)
    updater = AuthenticatedUpdater(tree)
    keys = iter(range(100_001, 10_000_000, 2))

    def do_insert():
        key = next(keys)
        updater.insert(Row(schema, (key, "new", "row")))

    benchmark(do_insert)
    meter = tree.signing.engine.meter
    print(
        f"\n[{policy.value}] combines recorded: {meter.combines}, "
        f"signs: (see signer meter)"
    )


def test_insert_fold_vs_recompute_opcounts(benchmark):
    """Op-count comparison behind the paper's insert claim."""
    results = {}

    def measure():
        results.clear()
        # An odd key in the middle of the even-keyed table lands in a
        # half-full leaf: no split, so the digest-maintenance paths (the
        # fold vs the ancestor recompute) are isolated.
        key = 1001
        for policy in (DigestPolicy.FLATTENED, DigestPolicy.NESTED):
            meter = CostMeter()
            schema, tree = _build_tree(policy, 2_000, meter=meter)
            updater = AuthenticatedUpdater(tree)
            meter.reset()
            updater.insert(Row(schema, (key, "new", "row")))
            results[policy.value] = meter.snapshot()
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Insert maintenance op-counts: FLATTENED fold vs NESTED recompute",
        "update_insert_opcounts",
        ["policy", "hashes", "combines"],
        [
            (name, snap["hashes"], snap["combines"])
            for name, snap in results.items()
        ],
    )
    assert results["flattened"]["combines"] < results["nested"]["combines"]


def test_propagation_cost_end_to_end(benchmark):
    """End-to-end write-path cost under eager delta replication: one
    insert at the central server through to N edge replicas, reporting
    replication bytes and simulated transfer seconds per edge count."""
    import time

    from repro.edge.central import CentralServer
    from repro.workloads.generator import TableSpec, generate_table

    series = []
    for n_edges in (1, 2, 4, 8):
        central = CentralServer(db_name="propbench", rsa_bits=512, seed=55)
        schema, data = generate_table(
            TableSpec(name="t", rows=1_000, columns=5, seed=3)
        )
        central.create_table(schema, data)
        edges = [central.spawn_edge_server(f"e{i}") for i in range(n_edges)]
        for edge in edges:
            edge.replication_channel.reset()
        t0 = time.perf_counter()
        central.insert("t", (10_000_000, *["p"] * 4))
        elapsed = time.perf_counter() - t0
        total_bytes = sum(
            e.replication_channel.total_bytes for e in edges
        )
        total_seconds = sum(
            e.replication_channel.total_seconds for e in edges
        )
        series.append(
            (n_edges, total_bytes, round(total_seconds, 4), round(elapsed, 4))
        )
    emit(
        "End-to-end propagation: one insert -> N edges (eager deltas)",
        "update_propagation_cost",
        ["edges", "replication bytes", "simulated transfer s", "wall s"],
        series,
    )
    # Per-edge cost is flat: total bytes scale linearly with edge count.
    per_edge = [b / n for n, b, _s, _w in series]
    assert max(per_edge) < 1.5 * min(per_edge)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("range_size", [1, 16, 64])
def test_delete_range_measured(benchmark, range_size):
    """Range deletes: recompute cost grows with the deleted range."""
    schema, tree = _build_tree(DigestPolicy.FLATTENED, 4_000)
    updater = AuthenticatedUpdater(tree)
    starts = iter(range(0, 8_000, 2 * range_size))

    def do_delete():
        start = next(starts)
        updater.delete_range(start, start + 2 * range_size - 1)

    benchmark.pedantic(do_delete, rounds=20, iterations=1)
    tree.audit()  # digests stay correct throughout
