"""Ablation A1 — the commutative-hash choice.

The paper argues its exponentiation combinator is worth its extra
computational cost because of the edge-side projection and set-style
VOs it enables.  This bench quantifies that cost against the hardened
alternatives (multiplicative multiset hash mod a 1024-bit prime,
additive lattice hash) and pins the repeated-squaring optimization the
paper describes against CPython's built-in pow."""

import pytest

from repro.bench.series import emit
from repro.crypto.commutative import (
    ExponentialCommutativeHash,
    get_commutative_hash,
    pow_by_repeated_squaring,
)

SCHEMES = ["exp2k", "mult-prime", "add2k"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_combine_throughput(benchmark, scheme):
    h = get_commutative_hash(scheme)
    values = [h.digest_of_bytes(f"value-{i}".encode()) for i in range(256)]
    result = benchmark(h.combine, values)
    assert result == h.combine(values)  # deterministic


@pytest.mark.parametrize("scheme", SCHEMES)
def test_digest_throughput(benchmark, scheme):
    h = get_commutative_hash(scheme)
    benchmark(h.digest_of_bytes, b"x" * 200)


def test_combine_cost_table(benchmark):
    """One table comparing per-combine work across schemes."""
    import time

    rows = []

    def measure():
        rows.clear()
        for scheme in SCHEMES:
            h = get_commutative_hash(scheme)
            values = [h.digest_of_bytes(f"v{i}".encode()) for i in range(512)]
            start = time.perf_counter()
            for _ in range(5):
                h.combine(values)
            elapsed = (time.perf_counter() - start) / (5 * len(values))
            rows.append((scheme, f"{elapsed * 1e6:.2f}us", h.digest_len))
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation A1: per-combine cost by commutative scheme",
        "ablation_hash",
        ["scheme", "per-combine", "digest bytes"],
        rows,
    )


def test_repeated_squaring_vs_builtin(benchmark):
    """The paper's explicit square-and-multiply vs CPython pow."""
    n = 1 << 128
    base, exp = 3, (1 << 127) + 12345

    def explicit():
        return pow_by_repeated_squaring(base, exp, n)

    result = benchmark(explicit)
    assert result == pow(base, exp, n)


def test_builtin_pow_reference(benchmark):
    n = 1 << 128
    base, exp = 3, (1 << 127) + 12345
    benchmark(pow, base, exp, n)


def test_exponential_hash_modulus_mask_optimization(benchmark):
    """n = 2^k makes the reduction a mask — the paper's choice.  The
    same combine against a prime modulus of equal width shows the
    difference."""
    h = ExponentialCommutativeHash(bits=128)
    values = [h.digest_of_bytes(f"v{i}".encode()) for i in range(128)]
    benchmark(h.combine, values)
