"""Figure 13 — computation-cost sensitivity analyses at X = 10.

(a) the effect of Cost_c/Cost_a (0..3): both schemes rise linearly,
    the Naive-VB gap stays nearly constant (decryption-dominated);
(b) the effect of Q_c (0..10): the gap is exactly the per-tuple
    decryption term, independent of projection width."""

from repro.analysis.computation import fig13a_series, fig13b_series
from repro.bench.series import emit


def test_fig13a_cost_ratio(benchmark):
    rows = fig13a_series()
    table = [
        (
            ratio,
            e["naive(20%)"],
            e["vbtree(20%)"],
            e["naive(80%)"],
            e["vbtree(80%)"],
        )
        for ratio, e in rows
    ]
    emit(
        "Figure 13(a): computation vs Cost_c/Cost_a (X = 10)",
        "fig13a_cost_ratio",
        ["Cost_c/Cost_a", "Naive(20%)", "VB-tree(20%)", "Naive(80%)", "VB-tree(80%)"],
        table,
    )
    gaps80 = [row[3] - row[4] for row in table]
    assert max(gaps80) - min(gaps80) < 0.4 * max(gaps80)  # 'almost constant'
    vb80 = [row[4] for row in table]
    assert vb80 == sorted(vb80)  # rises with the ratio
    benchmark(fig13a_series)


def test_fig13b_query_cols(benchmark):
    rows = fig13b_series()
    table = [
        (
            qc,
            e["naive(20%)"],
            e["vbtree(20%)"],
            e["naive(80%)"],
            e["vbtree(80%)"],
        )
        for qc, e in rows
    ]
    emit(
        "Figure 13(b): computation vs Q_c (X = 10)",
        "fig13b_query_cols",
        ["Q_c", "Naive(20%)", "VB-tree(20%)", "Naive(80%)", "VB-tree(80%)"],
        table,
    )
    gaps80 = [row[3] - row[4] for row in table]
    gaps20 = [row[1] - row[2] for row in table]
    # 'Q_c has little effect on the relative performance': constant gap.
    assert max(gaps80) - min(gaps80) < 0.01 * max(gaps80)
    assert max(gaps20) - min(gaps20) < 0.01 * max(gaps20)
    benchmark(fig13b_series)
