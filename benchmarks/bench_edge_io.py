"""Edge-server I/O — the Section 3.3 claim that per-node signatures buy
"expected I/O savings at the edge servers during runtime".

Because every node digest is individually signed, VO construction only
touches the enveloping subtree — it never climbs to the root the way a
root-signature scheme ([5]) must for every query.  Consequence: edge
I/O per query scales with the *result*, not with the *table*.  This
bench pins that: the same absolute query against a 10x larger table
costs (almost) the same logical node reads."""

from repro.bench.series import emit
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.vbtree import VBTree
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.edge.central import CentralServer
from repro.workloads.generator import TableSpec, generate_table


def _deploy(rows: int):
    central = CentralServer(db_name="iobench", rsa_bits=512, seed=55)
    schema, data = generate_table(
        TableSpec(name="t", rows=rows, columns=6, seed=8)
    )
    central.create_table(schema, data, fanout_override=16)
    return central.spawn_edge_server(f"io-edge-{rows}")


def test_edge_io_independent_of_table_size(benchmark):
    sizes = (1_000, 4_000, 16_000)
    edges = {}

    def deploy_all():
        for n in sizes:
            edges[n] = _deploy(n)
        return edges

    benchmark.pedantic(deploy_all, rounds=1, iterations=1)

    series = []
    heights = {}
    for n in sizes:
        edge = edges[n]
        heights[n] = edge.replica("t").height()
        resp = edge.range_query("t", low=100, high=150)  # same 51 rows
        assert len(resp.result.rows) == 51
        series.append(
            (n, heights[n], edge.io_reads_last_query, resp.wire_bytes)
        )
    emit(
        "Edge I/O per query vs table size (same 51-row result)",
        "edge_io_table_size",
        ["table rows", "height", "logical node reads", "response bytes"],
        series,
    )
    io_small, io_large = series[0][2], series[-1][2]
    height_delta = heights[sizes[-1]] - heights[sizes[0]]
    # I/O may grow with the height (a few descent nodes per extra
    # level), never proportionally to the 16x table growth.
    assert io_large - io_small <= 3 * height_delta + 3
    assert io_large < 2 * io_small
    # Response bytes essentially constant (same result, same envelope).
    assert abs(series[-1][3] - series[0][3]) < 0.25 * series[0][3]


def test_edge_io_scales_with_result(benchmark):
    edge = _deploy(8_000)

    series = []

    def sweep():
        series.clear()
        for width in (10, 100, 1_000, 4_000):
            resp = edge.range_query("t", low=0, high=width - 1)
            series.append((width, edge.io_reads_last_query))
        return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Edge I/O per query vs result size (8k-row table)",
        "edge_io_result_size",
        ["result rows", "logical node reads"],
        series,
    )
    reads = [r for _w, r in series]
    assert reads == sorted(reads)  # grows with the result...
    assert reads[-1] > 4 * reads[0]  # ...roughly proportionally
