"""Chaos battery baselines: detection latency and recovery time.

Runs every in-process scenario in :data:`repro.chaos.scenarios.SCENARIOS`
(seed 0 — the storm, the fleet, and the query stream are all pure
functions of their seeds) and commits the **deterministic counts** as a
gated series:

* ``verified`` / ``unverified`` — routed results seen by the caller;
  ``unverified`` is gated at exactly zero tolerance, because one
  unverified answer is the broken paper invariant, not a regression.
* ``detection_queries`` — routed queries between the first tamper and
  the first verify-REJECT (0 for tamper-free scenarios): the battery's
  detection-latency figure, in queries rather than seconds so it
  gates byte-exactly.
* ``recovery_pumps`` — settle rounds from end-of-storm to fleet-wide
  cursor parity: the recovery-time figure, in replication pumps.
* ``rejections`` / ``unavailable`` — how loudly tamper was refused and
  how much availability the storm cost.

Wall-clock latency (the load generator's p50/p99 against its SLO) is
printed alongside but deliberately **not** written to the gated series
— a slow CI host must never look like a detection regression.

Gated by ``benchmarks/results/baselines/chaos.json``; to update after
an intentional behaviour change, re-run this bench and copy
``benchmarks/results/chaos.json`` over the baseline in the same PR.
"""

import json
import os

from repro.bench.series import emit, results_dir
from repro.chaos.scenarios import SCENARIOS

HEADERS = (
    "scenario", "verified", "unverified", "unavailable", "rejections",
    "detection_queries", "recovery_pumps",
)


def _run_battery() -> list[dict]:
    rows = []
    for name in sorted(SCENARIOS):
        report = SCENARIOS[name](seed=0)
        assert report.unverified == 0, (
            f"{name}: unverified result under storm"
        )
        summary = report.summary()
        rows.append({
            "scenario": name,
            **{h: summary[h] for h in HEADERS if h != "scenario"},
            # Reported, never gated (wall-clock):
            "p50_ms": summary.get("p50_ms", 0.0),
            "p99_ms": summary.get("p99_ms", 0.0),
        })
    return rows


def _merge_series(path: str, rows: list[dict]) -> list[dict]:
    """Merge rows into the results file keyed by scenario."""
    existing: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh).get("series", [])
        except (OSError, ValueError):
            existing = []
    fresh = {r["scenario"] for r in rows}
    merged = [r for r in existing if r.get("scenario") not in fresh]
    merged.extend(rows)
    with open(path, "w") as fh:
        json.dump({"series": merged}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")
    return merged


def test_chaos_battery(benchmark):
    """Every scenario holds zero-unverified; detection latency and
    recovery time are committed as deterministic, gateable counts."""
    series = _run_battery()
    rows = {r["scenario"]: r for r in series}

    # Byzantine storms detect and count their detection latency;
    # clean storms reject nothing.
    for name in ("byzantine_edges", "combined_storm"):
        assert rows[name]["detection_queries"] > 0
        assert rows[name]["rejections"] > 0
    for name in ("network_flaps", "slow_links", "rotation_mid_partition"):
        assert rows[name]["rejections"] == 0
        assert rows[name]["detection_queries"] == 0

    emit(
        "Chaos battery: detection latency and recovery (deterministic)",
        "chaos",
        headers=HEADERS + ("p50_ms", "p99_ms"),
        rows=[
            tuple(r[k] for k in HEADERS + ("p50_ms", "p99_ms"))
            for r in series
        ],
    )
    # Only the deterministic counts enter the gated JSON series; the
    # wall-clock columns stay in the printed table and CSV.
    gated = [{k: r[k] for k in HEADERS} for r in series]
    _merge_series(os.path.join(results_dir(), "chaos.json"), gated)

    benchmark.pedantic(
        lambda: SCENARIOS["network_flaps"](seed=0), rounds=1, iterations=1
    )
