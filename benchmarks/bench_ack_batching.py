"""Ack batching: cumulative cursor acks vs the per-frame protocol.

The replication metadata cost the batched-ack protocol (DESIGN.md
section 10) exists to cut: under one-ack-per-frame, sync cost grows one
edge→central ack frame per delta frame; under coalescing, one
cumulative ``CursorAckFrame`` acknowledges a whole window (count/byte
threshold, plus one probe-solicited ack per settle point).  This bench
runs the *identical* eager update workload under both cadences, on both
transports —

* in-process (deterministic byte/frame counts, gated by
  ``check_regression.py`` via ``benchmarks/results/ack_batching.json``)
* loopback TCP with the edge's serve loop in a thread (same wire
  traffic as a real deployment; probe-round counts are
  timing-dependent, so its ack numbers are asserted as a ratio, not
  gated)

— asserting **byte/frame parity on the delta stream** (batching thins
acks, never payload: equal delta throughput by construction) and a
**≥5× reduction in ack frames per synced delta**.  A second scenario
tracks the adaptive per-edge window: on a fast link it converges above
its initial size; on an injected slow-hold fault the observed ack
latency shrinks it back down.
"""

import json
import os
import threading
import time

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer
from repro.edge.deploy import Deployment
from repro.edge.serve import run_edge
from repro.workloads.generator import TableSpec, generate_table

UPDATES = 40
ROWS = 240
BATCH_ACK_EVERY = 16
PROTOCOLS = (("per_frame", 1), ("batched", BATCH_ACK_EVERY))

#: The ≥5× acceptance floor for ack frames per synced delta.
REDUCTION_FLOOR = 5.0


def _make_central(ack_every: int, **kwargs) -> CentralServer:
    # A window comfortably above the coalescing threshold, identical
    # for both protocols: the comparison isolates the ack cadence.
    # (Below the threshold the engine's window-blocked solicitation
    # paces acks by the window instead — still batched, just coarser.)
    kwargs.setdefault("fanout_window", 64)
    central = CentralServer(
        db_name="ackbench",
        rsa_bits=512,
        seed=909,
        ack_every=ack_every,
        **kwargs,
    )
    spec = TableSpec(name="items", rows=ROWS, columns=5, seed=17)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    return central


def _run_updates(central) -> None:
    for i in range(UPDATES):
        central.insert("items", (50_000 + i, *["uu"] * 4))


def _count(transport, direction: str, kind: str) -> int:
    channel = getattr(transport, f"{direction}_channel")
    return sum(1 for t in channel.transfers if t.kind == kind)


def _kind_bytes(transport, direction: str, kind: str) -> int:
    channel = getattr(transport, f"{direction}_channel")
    return channel.bytes_by_kind().get(kind, 0)


def _inprocess_run(protocol: str, ack_every: int) -> dict:
    central = _make_central(ack_every)
    central.spawn_edge_server("edge-0")
    link = central.fanout.peer("edge-0").transport
    base_acks = _count(link, "up", "ack")
    start = time.perf_counter()
    _run_updates(central)
    central.fanout.drain("edge-0", wait=True)  # settle the coalesced tail
    elapsed = time.perf_counter() - start
    assert central.staleness("edge-0", "items") == 0  # exact after settle
    assert central.fanout.peer("edge-0").inflight == 0
    return {
        "transport": "inprocess",
        "protocol": protocol,
        "updates": UPDATES,
        "ack_frames": _count(link, "up", "ack") - base_acks,
        "ack_bytes": _kind_bytes(link, "up", "ack"),
        "delta_frames": _count(link, "down", "delta"),
        "delta_bytes": _kind_bytes(link, "down", "delta"),
        "probe_frames": _count(link, "down", "control"),
        "sync_seconds": elapsed,
    }


def _tcp_run(protocol: str, ack_every: int) -> dict:
    central = _make_central(ack_every)
    deploy = Deployment(central, io_timeout=10)
    host, port = deploy.address
    thread = threading.Thread(
        target=run_edge,
        args=("edge-0", host, port),
        kwargs={"max_reconnects": 0, "retry_attempts": 20,
                "retry_delay": 0.05, "io_timeout": 10},
    )
    thread.start()
    try:
        deploy.wait_for_edge("edge-0", timeout=30)
        link = deploy.edges["edge-0"].transport
        base_acks = _count(link, "up", "ack")
        start = time.perf_counter()
        _run_updates(central)
        deploy.sync("items")
        elapsed = time.perf_counter() - start
        assert central.staleness("edge-0", "items") == 0
        row = {
            "transport": "tcp",
            "protocol": protocol,
            "updates": UPDATES,
            # Probe rounds are timing-dependent over real sockets, so
            # TCP ack counts are reported + ratio-asserted, not gated.
            "ack_frames_observed": _count(link, "up", "ack") - base_acks,
            "delta_frames": _count(link, "down", "delta"),
            "delta_bytes": _kind_bytes(link, "down", "delta"),
            "sync_seconds": elapsed,
        }
    finally:
        deploy.shutdown()
        thread.join(timeout=10)
    return row


def test_ack_batching_reduction(benchmark):
    """≥5× fewer ack frames per synced delta at equal delta traffic,
    on both transports."""
    series = [
        _inprocess_run(protocol, ack_every)
        for protocol, ack_every in PROTOCOLS
    ] + [
        _tcp_run(protocol, ack_every) for protocol, ack_every in PROTOCOLS
    ]

    def row(transport, protocol):
        return next(
            s for s in series
            if s["transport"] == transport and s["protocol"] == protocol
        )

    for transport in ("inprocess", "tcp"):
        legacy = row(transport, "per_frame")
        batched = row(transport, "batched")
        # Equal delta throughput: batching thins acks, never payload.
        assert batched["delta_frames"] == legacy["delta_frames"]
        assert batched["delta_bytes"] == legacy["delta_bytes"]
        acks_key = (
            "ack_frames" if transport == "inprocess" else "ack_frames_observed"
        )
        reduction = legacy[acks_key] / max(1, batched[acks_key])
        assert reduction >= REDUCTION_FLOOR, (
            f"{transport}: only {reduction:.1f}x fewer ack frames "
            f"({legacy[acks_key]} -> {batched[acks_key]})"
        )
    # The wire protocol is medium-independent: byte-identical delta
    # frames whichever transport carries them.
    assert (
        row("tcp", "per_frame")["delta_bytes"]
        == row("inprocess", "per_frame")["delta_bytes"]
    )
    assert (
        row("tcp", "batched")["delta_bytes"]
        == row("inprocess", "batched")["delta_bytes"]
    )

    emit(
        f"Ack batching: frames for {UPDATES} eager updates "
        f"(ack_every={BATCH_ACK_EVERY})",
        "ack_batching",
        ["transport", "protocol", "delta frames", "delta bytes",
         "ack frames", "sync s"],
        [
            (s["transport"], s["protocol"], s["delta_frames"],
             s["delta_bytes"],
             s.get("ack_frames", s.get("ack_frames_observed")),
             round(s["sync_seconds"], 3))
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "ack_batching.json")
    with open(path, "w") as fh:
        json.dump({"series": series}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")

    benchmark.pedantic(
        _inprocess_run, args=("batched", BATCH_ACK_EVERY),
        rounds=1, iterations=1,
    )


def test_adaptive_window_convergence(benchmark):
    """The AIMD window grows on a fast link and shrinks back under an
    injected slow-hold fault (observed ack latency spikes)."""
    window_init, window_max = 4, 16

    # Fast link: instant in-process acks grow the window to the ceiling.
    central = _make_central(1, fanout_window=window_init,
                            fanout_window_max=window_max)
    central.spawn_edge_server("fast")
    _run_updates(central)
    fast_size = central.fanout.peer("fast").window.size
    assert fast_size == window_max, f"fast link stuck at {fast_size}"

    # Slow-hold fault: frames sit in the link, settle late, and the
    # high observed latency walks the window back down.
    central = _make_central(1, fanout_window=window_init,
                            fanout_window_max=window_max)
    central.fanout.ack_latency_target = 0.02
    central.spawn_edge_server("slow")
    peer = central.fanout.peer("slow")
    for i in range(6):  # grow it first on the healthy link
        central.insert("items", (60_000 + i, *["uu"] * 4))
    grown = peer.window.size
    assert grown > window_init
    peer.transport.faults.hold = True
    for i in range(4):
        central.insert("items", (61_000 + i, *["uu"] * 4))
    time.sleep(0.25)  # the frames age inside the slow link
    peer.transport.faults.clear()
    central.propagate("items")
    shrunk = peer.window.size
    assert central.staleness("slow", "items") == 0
    assert shrunk < grown, f"window did not shrink ({grown} -> {shrunk})"
    assert shrunk >= peer.window.floor

    emit(
        "Adaptive window: fast link vs slow-hold fault "
        f"(init {window_init}, ceiling {window_max})",
        "ack_window",
        ["scenario", "window"],
        [("fast link (converged)", fast_size),
         ("after slow-hold fault", shrunk)],
    )
    path = os.path.join(results_dir(), "ack_window.json")
    with open(path, "w") as fh:
        json.dump(
            {"series": [
                {"scenario": "fast", "window": fast_size},
                {"scenario": "slow_hold", "window": shrunk},
            ]},
            fh,
            indent=2,
        )
    print(f"[json series written to {os.path.relpath(path)}]")

    def fresh_run():
        c = _make_central(1, fanout_window=window_init,
                          fanout_window_max=window_max)
        c.spawn_edge_server("fast")
        _run_updates(c)

    benchmark.pedantic(fresh_run, rounds=1, iterations=1)
