"""Ablation A4 — secondary VB-trees (sort orders beyond the key).

The paper builds "one or more VB-trees" per table.  This bench
quantifies why more than one: the same non-key selection answered from
(a) the primary tree — scattered matches, one D_S digest per gap — vs
(b) a secondary tree sorted on the selection attribute — contiguous
envelope, boundary-only D_S."""

import pytest

from repro.bench.series import emit
from repro.db.expressions import between
from repro.edge.central import CentralServer
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType

SELECTIVITIES = (0.05, 0.2, 0.5)


@pytest.fixture(scope="module")
def sec_deployment():
    central = CentralServer(db_name="secbench", rsa_bits=512, seed=71)
    schema = TableSchema(
        "readings",
        (
            Column("id", IntType()),
            Column("temp", IntType()),
            Column("site", IntType()),
            Column("raw", IntType()),
        ),
        key="id",
    )
    n = 2_000
    rows = [(i, (i * 7919) % 1000, i % 7, i) for i in range(n)]
    central.create_table(schema, rows)
    central.create_secondary_index("readings", "temp")
    edge = central.spawn_edge_server("bench-sec-edge")
    return central, edge, n


def test_secondary_vs_primary_vo(benchmark, sec_deployment):
    central, edge, n = sec_deployment

    series = []

    def sweep():
        series.clear()
        for sel in SELECTIVITIES:
            width = int(1000 * sel)
            low, high = 100, 100 + width - 1
            via_primary = edge.select("readings", between("temp", low, high))
            via_secondary = edge.secondary_range_query(
                "readings", "temp", low=low, high=high
            )
            assert sorted(via_primary.result.keys) == sorted(
                via_secondary.result.keys
            )
            series.append(
                (
                    sel * 100,
                    len(via_primary.result.rows),
                    via_primary.result.vo.num_selection_digests,
                    via_secondary.result.vo.num_selection_digests,
                    via_primary.wire_bytes,
                    via_secondary.wire_bytes,
                )
            )
        return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation A4: non-key selection via primary vs secondary VB-tree",
        "ablation_secondary",
        ["sel %", "rows", "|D_S| primary", "|D_S| secondary",
         "bytes primary", "bytes secondary"],
        series,
    )
    for _sel, _rows, ds_p, ds_s, b_p, b_s in series:
        assert ds_s < ds_p
        assert b_s < b_p


def test_secondary_query_latency(benchmark, sec_deployment):
    _central, edge, _n = sec_deployment
    resp = benchmark(
        edge.secondary_range_query, "readings", "temp", 100, 300
    )
    assert resp.result.rows
