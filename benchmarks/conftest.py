"""Shared fixtures for the benchmark harness.

The *analytic* benches evaluate the Section-4 formulas at the paper's
scale (1M rows — closed-form, instant).  The *measured* benches run the
real implementation at reduced scale (see DESIGN.md, deviation D4) on
the deployment below."""

import pytest

from repro.edge.central import CentralServer
from repro.workloads.generator import TableSpec, generate_table

#: Rows in the measured deployment (paper scale / 200).
MEASURED_ROWS = 5_000
#: Columns (matches the paper's N_c).
MEASURED_COLS = 10
#: Bytes per attribute (matches the paper's 20 B).
MEASURED_ATTR = 20


@pytest.fixture(scope="session")
def deployment():
    """central + edge + client over a 5k-row, 10-column table."""
    central = CentralServer(
        db_name="benchdb", rsa_bits=512, seed=1234, enable_naive=True
    )
    spec = TableSpec(
        name="items",
        rows=MEASURED_ROWS,
        columns=MEASURED_COLS,
        attr_size=MEASURED_ATTR,
        seed=99,
    )
    schema, rows = generate_table(spec)
    central.create_table(schema, rows)
    edge = central.spawn_edge_server("bench-edge")
    client = central.make_client()
    return central, edge, client, spec
