"""Figure 11 — communication cost vs attribute size (attrFactor),
selectivity 20% and 80%, Q_c = N_c.

The paper's observation: the schemes converge *relatively* as
attributes dominate the payload, but the absolute gap stays at
Q_r x |D| — "at least 3 MB more for selectivity 20% and 12 MB more for
80%"."""

from repro.analysis.communication import fig11_series
from repro.bench.series import emit


def test_fig11_attrfactor(benchmark):
    rows = fig11_series()
    table = [
        (
            factor,
            entry["naive(20%)"],
            entry["vbtree(20%)"],
            entry["naive(80%)"],
            entry["vbtree(80%)"],
        )
        for factor, entry in rows
    ]
    emit(
        "Figure 11: communication vs attrFactor (|A| = attrFactor x |D|)",
        "fig11_attrfactor",
        ["attrFactor", "Naive(20%)", "VB-tree(20%)", "Naive(80%)", "VB-tree(80%)"],
        table,
    )
    for _factor, n20, v20, n80, v80 in table:
        assert n20 - v20 >= 3e6    # the paper's quoted absolute gaps
        assert n80 - v80 >= 12e6
    # Relative convergence: ratio falls as attributes grow.
    first, last = table[1], table[-1]
    assert last[3] / last[4] < first[3] / first[4]
    benchmark(fig11_series)
