"""Fan-out scaling: sync time and replication bytes vs. edge count.

The fan-out engine (DESIGN.md section 7) delivers signed delta batches
through per-edge transport links with bounded in-flight windows.  This
bench sweeps the edge count (1..32) under eager and lazy replication,
measuring wall-clock sync time and total replication bytes for a fixed
update batch, and runs a slow-edge scenario demonstrating that the
write path is not blocked by one wedged edge.  Series are written as
JSON (``benchmarks/results/fanout_scale.json``) in the same shape
``bench_replication.py`` uses, plus the usual CSV.

The event-loop rows (DESIGN.md section 11) push the same bench to
fleet scale: one central process driving **2000 connected in-process
edges** (``mode="fleet"``, per-edge memory must stay flat) and **500
real loopback-TCP edges** served by a single
:class:`~repro.edge.event_loop.EdgeHost` reactor thread, under both
central I/O paths (``mode="tcp-reactor"`` / ``"tcp-threaded"``).  Each
row reports wall-clock sync, send-side syscalls per delta batch, and
frames/sec; the bench asserts the reactor needs ≥5× fewer send
syscalls than the threaded path at 500 edges and that delta bytes per
edge are **exactly** identical across all three media — same frames on
the wire, only the syscall schedule differs.
"""

import json
import os
import time
import tracemalloc

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer, ReplicationMode
from repro.edge.deploy import Deployment
from repro.edge.event_loop import EdgeHost
from repro.workloads.generator import TableSpec, generate_table

EDGE_COUNTS = (1, 2, 4, 8, 16, 32)
UPDATES = 8
ROWS = 300

#: Fleet-scale sweep (event-loop rows): in-process simulated edges and
#: real loopback-TCP edges.  The fleet table is smaller than the 1..32
#: sweep's — these rows measure *delivery* scaling, not snapshot apply.
FLEET_COUNTS = (50, 500, 2000)
TCP_COUNTS = (50, 500)
FLEET_ROWS = 60


def _merge_series(path: str, rows: list[dict]) -> list[dict]:
    """Merge ``rows`` into the results file keyed by ``(mode, edges)``.

    The 1..32 eager/lazy sweep and the fleet/TCP sweep run as separate
    tests but gate against one committed baseline, so each test must
    preserve the other's rows whichever order (or subset) ran.
    """
    existing: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh).get("series", [])
        except (OSError, ValueError):
            existing = []
    fresh = {(r["mode"], r["edges"]) for r in rows}
    merged = [
        r for r in existing if (r.get("mode"), r.get("edges")) not in fresh
    ]
    merged.extend(rows)
    with open(path, "w") as fh:
        json.dump({"series": merged}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")
    return merged


def _deployment(n_edges: int, replication: ReplicationMode, **kwargs):
    central = CentralServer(
        db_name="fanoutbench",
        rsa_bits=512,
        seed=505,
        replication=replication,
        **kwargs,
    )
    spec = TableSpec(name="items", rows=ROWS, columns=5, seed=12)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(n_edges)]
    return central, edges


def _run_updates(central) -> None:
    for i in range(UPDATES):
        central.insert("items", (50_000 + i, *["uu"] * 4))


def _sync_cost(n_edges: int, replication: ReplicationMode) -> dict:
    central, edges = _deployment(n_edges, replication)
    for edge in edges:
        edge.replication_channel.reset()
    start = time.perf_counter()
    _run_updates(central)
    if replication is ReplicationMode.LAZY:
        central.propagate("items")
    elapsed = time.perf_counter() - start
    total_bytes = sum(e.replication_channel.total_bytes for e in edges)
    sim_seconds = sum(e.replication_channel.total_seconds for e in edges)
    assert all(central.staleness(e, "items") == 0 for e in edges)
    return {
        "edges": n_edges,
        "mode": replication.value,
        "updates": UPDATES,
        "sync_seconds": elapsed,
        "sim_transfer_seconds": sim_seconds,
        "replication_bytes": total_bytes,
        "bytes_per_edge": total_bytes // n_edges,
    }


def test_fanout_scaling(benchmark):
    """Bytes and time vs. edge count, eager vs. lazy."""
    series = [
        _sync_cost(n, mode)
        for mode in (ReplicationMode.EAGER, ReplicationMode.LAZY)
        for n in EDGE_COUNTS
    ]
    emit(
        "Replication fan-out: sync cost vs edge count (eager vs lazy)",
        "fanout_scale",
        ["mode", "edges", "sync s", "bytes total", "bytes/edge"],
        [
            (s["mode"], s["edges"], round(s["sync_seconds"], 3),
             s["replication_bytes"], s["bytes_per_edge"])
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "fanout_scale.json")
    _merge_series(path, series)

    # Per-edge replication cost is flat as the fleet grows (each edge
    # receives the same O(path) deltas), so total bytes scale linearly.
    for mode in ("eager", "lazy"):
        rows = [s for s in series if s["mode"] == mode]
        smallest, largest = rows[0], rows[-1]
        ratio = largest["bytes_per_edge"] / smallest["bytes_per_edge"]
        assert 0.5 < ratio < 2.0, f"{mode}: per-edge bytes not flat ({ratio:.2f}x)"
    # Lazy coalescing ships fewer bytes per edge than eager's per-update
    # pushes at every fleet size.
    for n in EDGE_COUNTS:
        eager = next(s for s in series if s["mode"] == "eager" and s["edges"] == n)
        lazy = next(s for s in series if s["mode"] == "lazy" and s["edges"] == n)
        assert lazy["bytes_per_edge"] < eager["bytes_per_edge"]

    benchmark.pedantic(
        _sync_cost, args=(4, ReplicationMode.EAGER), rounds=1, iterations=1
    )


def test_slow_edge_does_not_block_writes(benchmark):
    """One frame-holding (slow) edge: the write path and the healthy
    edges proceed at full speed; the slow edge absorbs at most the
    in-flight window and heals after the fault clears."""
    n_edges = 8
    central, edges = _deployment(
        n_edges, ReplicationMode.EAGER, fanout_window=4
    )
    slow = edges[-1]
    link = central.fanout.peer(slow.name).transport
    link.faults.hold = True

    start = time.perf_counter()
    _run_updates(central)
    slow_elapsed = time.perf_counter() - start
    healthy = edges[:-1]
    assert all(central.staleness(e, "items") == 0 for e in healthy)
    assert central.staleness(slow, "items") > 0
    assert link.queued_frames <= 4

    # Clear the fault: the slow edge catches up (delta or snapshot).
    link.faults.clear()
    start = time.perf_counter()
    central.propagate("items")
    heal_elapsed = time.perf_counter() - start
    assert central.staleness(slow, "items") == 0

    # Reference run without any fault, same fleet size.
    central2, _edges2 = _deployment(
        n_edges, ReplicationMode.EAGER, fanout_window=4
    )
    start = time.perf_counter()
    _run_updates(central2)
    clean_elapsed = time.perf_counter() - start

    emit(
        "Slow-edge scenario: write-path wall time (8 edges, window 4)",
        "fanout_slow_edge",
        ["scenario", "seconds"],
        [
            ("all edges healthy", round(clean_elapsed, 3)),
            ("one slow edge", round(slow_elapsed, 3)),
            ("healing the slow edge", round(heal_elapsed, 3)),
        ],
    )
    path = os.path.join(results_dir(), "fanout_slow_edge.json")
    with open(path, "w") as fh:
        json.dump(
            {
                "series": [
                    {"scenario": "clean", "seconds": clean_elapsed},
                    {"scenario": "slow_edge", "seconds": slow_elapsed},
                    {"scenario": "heal", "seconds": heal_elapsed},
                ]
            },
            fh,
            indent=2,
        )
    print(f"[json series written to {os.path.relpath(path)}]")

    # The wedged edge must not make the write path materially slower —
    # if anything it is faster, since frames to it are skipped once the
    # window fills.  Allow generous head-room for timer noise.
    assert slow_elapsed < clean_elapsed * 3

    def fresh_run():
        central3, _ = _deployment(4, ReplicationMode.EAGER)
        _run_updates(central3)

    benchmark.pedantic(fresh_run, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Event-loop fleet scale: 2000 in-process edges, 500 TCP edges
# ---------------------------------------------------------------------------


def _fleet_central() -> CentralServer:
    central = CentralServer(
        db_name="fanoutbench",
        rsa_bits=512,
        seed=505,
        replication=ReplicationMode.EAGER,
    )
    spec = TableSpec(name="items", rows=FLEET_ROWS, columns=5, seed=12)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    return central


def _delta_bytes(channel) -> int:
    kinds = channel.bytes_by_kind()
    return kinds.get("delta", 0) + kinds.get("snapshot", 0)


def _fleet_cost(n_edges: int) -> dict:
    """One central process driving ``n_edges`` in-process edges.

    Per-edge memory is measured with ``tracemalloc`` across the fleet
    bootstrap (replica trees + transports are the per-edge state);
    snapshot payloads are serialized once for the whole fleet
    (:meth:`~repro.edge.central.CentralServer.spawn_edge_fleet`), which
    is what makes the 2000-edge point affordable.
    """
    central = _fleet_central()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    edges = central.spawn_edge_fleet([f"edge-{i}" for i in range(n_edges)])
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    for edge in edges:
        edge.replication_channel.reset()
    start = time.perf_counter()
    _run_updates(central)
    central.fanout.drain(wait=True)
    elapsed = time.perf_counter() - start
    assert all(central.staleness(e, "items") == 0 for e in edges)
    total_bytes = sum(_delta_bytes(e.replication_channel) for e in edges)
    return {
        "edges": n_edges,
        "mode": "fleet",
        "updates": UPDATES,
        "sync_seconds": elapsed,
        "replication_bytes": total_bytes,
        "bytes_per_edge": total_bytes // n_edges,
        "per_edge_kb": round((after - before) / 1024 / n_edges, 1),
        "frames_per_sec": round(UPDATES * n_edges / elapsed),
    }


def _tcp_cost(io_mode: str, n_edges: int) -> dict:
    """``n_edges`` real loopback-TCP edges hosted by one reactor thread.

    The central side runs the requested I/O path; the edge side is the
    same :class:`~repro.edge.event_loop.EdgeHost` in both runs, so the
    send-syscall comparison isolates exactly the central hot path.
    """
    central = _fleet_central()
    deploy = Deployment(central, io_mode=io_mode)
    host = EdgeHost(*deploy.address)
    names = [f"edge-{i}" for i in range(n_edges)]
    try:
        host.launch_fleet(names)
        for name in names:
            deploy.wait_for_edge(name, sync=False)
        deploy.sync()  # bootstrap snapshots, excluded from the row
        transports = [deploy.edges[name].transport for name in names]
        for transport in transports:
            transport.down_channel.reset()
        if io_mode == "reactor":
            sends_before = deploy.reactor.syscalls["sendmsg"]
        start = time.perf_counter()
        _run_updates(central)
        deploy.sync()
        elapsed = time.perf_counter() - start
        assert all(central.staleness(n, "items") == 0 for n in names)
        if io_mode == "reactor":
            sends = deploy.reactor.syscalls["sendmsg"] - sends_before
        else:
            sends = sum(t.syscalls["send"] for t in transports)
        total_bytes = sum(_delta_bytes(t.down_channel) for t in transports)
        return {
            "edges": n_edges,
            "mode": f"tcp-{io_mode}",
            "updates": UPDATES,
            "sync_seconds": elapsed,
            "replication_bytes": total_bytes,
            "bytes_per_edge": total_bytes // n_edges,
            "send_syscalls": sends,
            "syscalls_per_batch": round(sends / n_edges, 2),
            "frames_per_sec": round(UPDATES * n_edges / elapsed),
        }
    finally:
        host.close()
        deploy.shutdown()


def test_event_loop_fleet_scale(benchmark):
    """Fleet-scale acceptance (DESIGN.md section 11): 2000 connected
    in-process edges at flat per-edge memory, 500 TCP edges to cursor
    parity under both I/O paths, ≥5× fewer send syscalls per delta
    batch on the reactor, and exact delta-byte parity across media."""
    fleet = [_fleet_cost(n) for n in FLEET_COUNTS]
    tcp = [
        _tcp_cost(io_mode, n)
        for io_mode in ("reactor", "threaded")
        for n in TCP_COUNTS
    ]
    series = fleet + tcp
    emit(
        "Event-loop fan-out: fleet scale (in-process + TCP, both I/O paths)",
        "fanout_fleet",
        ["mode", "edges", "sync s", "bytes/edge", "syscalls/batch",
         "frames/s", "KiB/edge"],
        [
            (s["mode"], s["edges"], round(s["sync_seconds"], 3),
             s["bytes_per_edge"], s.get("syscalls_per_batch", "-"),
             s["frames_per_sec"], s.get("per_edge_kb", "-"))
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "fanout_scale.json")
    _merge_series(path, series)

    # Flat per-edge memory: the 2000-edge fleet costs no more per edge
    # than the 50-edge fleet (shared payloads, no per-edge threads).
    small, large = fleet[0], fleet[-1]
    assert large["edges"] >= 2000
    assert large["per_edge_kb"] <= small["per_edge_kb"] * 1.5, (
        f"per-edge memory grew {small['per_edge_kb']} → "
        f"{large['per_edge_kb']} KiB"
    )

    # The tentpole's syscall claim at 500 TCP edges: a whole pipelined
    # delta batch rides one vectored write per edge on the reactor,
    # versus one blocking sendall per frame (plus probe traffic) on the
    # threaded path.
    by_row = {(s["mode"], s["edges"]): s for s in series}
    reactor = by_row[("tcp-reactor", 500)]
    threaded = by_row[("tcp-threaded", 500)]
    assert reactor["send_syscalls"] * 5 <= threaded["send_syscalls"], (
        f"reactor {reactor['send_syscalls']} vs threaded "
        f"{threaded['send_syscalls']} send syscalls"
    )

    # Exact delta-byte parity across media: in-process vs TCP and
    # reactor vs threaded ship byte-identical replication traffic.
    for n in TCP_COUNTS:
        assert (
            by_row[("fleet", n)]["bytes_per_edge"]
            == by_row[("tcp-reactor", n)]["bytes_per_edge"]
            == by_row[("tcp-threaded", n)]["bytes_per_edge"]
        ), f"delta bytes diverge across media at {n} edges"

    benchmark.pedantic(_fleet_cost, args=(50,), rounds=1, iterations=1)
