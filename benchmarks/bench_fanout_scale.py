"""Fan-out scaling: sync time and replication bytes vs. edge count.

The fan-out engine (DESIGN.md section 7) delivers signed delta batches
through per-edge transport links with bounded in-flight windows.  This
bench sweeps the edge count (1..32) under eager and lazy replication,
measuring wall-clock sync time and total replication bytes for a fixed
update batch, and runs a slow-edge scenario demonstrating that the
write path is not blocked by one wedged edge.  Series are written as
JSON (``benchmarks/results/fanout_scale.json``) in the same shape
``bench_replication.py`` uses, plus the usual CSV.
"""

import json
import os
import time

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table

EDGE_COUNTS = (1, 2, 4, 8, 16, 32)
UPDATES = 8
ROWS = 300


def _deployment(n_edges: int, replication: ReplicationMode, **kwargs):
    central = CentralServer(
        db_name="fanoutbench",
        rsa_bits=512,
        seed=505,
        replication=replication,
        **kwargs,
    )
    spec = TableSpec(name="items", rows=ROWS, columns=5, seed=12)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    edges = [central.spawn_edge_server(f"edge-{i}") for i in range(n_edges)]
    return central, edges


def _run_updates(central) -> None:
    for i in range(UPDATES):
        central.insert("items", (50_000 + i, *["uu"] * 4))


def _sync_cost(n_edges: int, replication: ReplicationMode) -> dict:
    central, edges = _deployment(n_edges, replication)
    for edge in edges:
        edge.replication_channel.reset()
    start = time.perf_counter()
    _run_updates(central)
    if replication is ReplicationMode.LAZY:
        central.propagate("items")
    elapsed = time.perf_counter() - start
    total_bytes = sum(e.replication_channel.total_bytes for e in edges)
    sim_seconds = sum(e.replication_channel.total_seconds for e in edges)
    assert all(central.staleness(e, "items") == 0 for e in edges)
    return {
        "edges": n_edges,
        "mode": replication.value,
        "updates": UPDATES,
        "sync_seconds": elapsed,
        "sim_transfer_seconds": sim_seconds,
        "replication_bytes": total_bytes,
        "bytes_per_edge": total_bytes // n_edges,
    }


def test_fanout_scaling(benchmark):
    """Bytes and time vs. edge count, eager vs. lazy."""
    series = [
        _sync_cost(n, mode)
        for mode in (ReplicationMode.EAGER, ReplicationMode.LAZY)
        for n in EDGE_COUNTS
    ]
    emit(
        "Replication fan-out: sync cost vs edge count (eager vs lazy)",
        "fanout_scale",
        ["mode", "edges", "sync s", "bytes total", "bytes/edge"],
        [
            (s["mode"], s["edges"], round(s["sync_seconds"], 3),
             s["replication_bytes"], s["bytes_per_edge"])
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "fanout_scale.json")
    with open(path, "w") as fh:
        json.dump({"series": series}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")

    # Per-edge replication cost is flat as the fleet grows (each edge
    # receives the same O(path) deltas), so total bytes scale linearly.
    for mode in ("eager", "lazy"):
        rows = [s for s in series if s["mode"] == mode]
        smallest, largest = rows[0], rows[-1]
        ratio = largest["bytes_per_edge"] / smallest["bytes_per_edge"]
        assert 0.5 < ratio < 2.0, f"{mode}: per-edge bytes not flat ({ratio:.2f}x)"
    # Lazy coalescing ships fewer bytes per edge than eager's per-update
    # pushes at every fleet size.
    for n in EDGE_COUNTS:
        eager = next(s for s in series if s["mode"] == "eager" and s["edges"] == n)
        lazy = next(s for s in series if s["mode"] == "lazy" and s["edges"] == n)
        assert lazy["bytes_per_edge"] < eager["bytes_per_edge"]

    benchmark.pedantic(
        _sync_cost, args=(4, ReplicationMode.EAGER), rounds=1, iterations=1
    )


def test_slow_edge_does_not_block_writes(benchmark):
    """One frame-holding (slow) edge: the write path and the healthy
    edges proceed at full speed; the slow edge absorbs at most the
    in-flight window and heals after the fault clears."""
    n_edges = 8
    central, edges = _deployment(
        n_edges, ReplicationMode.EAGER, fanout_window=4
    )
    slow = edges[-1]
    link = central.fanout.peer(slow.name).transport
    link.faults.hold = True

    start = time.perf_counter()
    _run_updates(central)
    slow_elapsed = time.perf_counter() - start
    healthy = edges[:-1]
    assert all(central.staleness(e, "items") == 0 for e in healthy)
    assert central.staleness(slow, "items") > 0
    assert link.queued_frames <= 4

    # Clear the fault: the slow edge catches up (delta or snapshot).
    link.faults.clear()
    start = time.perf_counter()
    central.propagate("items")
    heal_elapsed = time.perf_counter() - start
    assert central.staleness(slow, "items") == 0

    # Reference run without any fault, same fleet size.
    central2, _edges2 = _deployment(
        n_edges, ReplicationMode.EAGER, fanout_window=4
    )
    start = time.perf_counter()
    _run_updates(central2)
    clean_elapsed = time.perf_counter() - start

    emit(
        "Slow-edge scenario: write-path wall time (8 edges, window 4)",
        "fanout_slow_edge",
        ["scenario", "seconds"],
        [
            ("all edges healthy", round(clean_elapsed, 3)),
            ("one slow edge", round(slow_elapsed, 3)),
            ("healing the slow edge", round(heal_elapsed, 3)),
        ],
    )
    path = os.path.join(results_dir(), "fanout_slow_edge.json")
    with open(path, "w") as fh:
        json.dump(
            {
                "series": [
                    {"scenario": "clean", "seconds": clean_elapsed},
                    {"scenario": "slow_edge", "seconds": slow_elapsed},
                    {"scenario": "heal", "seconds": heal_elapsed},
                ]
            },
            fh,
            indent=2,
        )
    print(f"[json series written to {os.path.relpath(path)}]")

    # The wedged edge must not make the write path materially slower —
    # if anything it is faster, since frames to it are skipped once the
    # window fills.  Allow generous head-room for timer noise.
    assert slow_elapsed < clean_elapsed * 3

    def fresh_run():
        central3, _ = _deployment(4, ReplicationMode.EAGER)
        _run_updates(central3)

    benchmark.pedantic(fresh_run, rounds=1, iterations=1)
