"""Ablation A3 — block size.

Bigger blocks raise fan-out (fewer, wider nodes) which shrinks tree
height but *grows* the per-boundary-node D_S term ``(f_vb - 1)`` in
formula (9).  The sweep exposes the trade-off the paper's 4 KiB default
sits in."""

from repro.analysis.communication import envelope_digests, vbtree_comm_cost
from repro.analysis.params import Parameters
from repro.bench.series import emit

BLOCK_SIZES = (1024, 2048, 4096, 8192, 16384, 32768, 65536)


def test_blocksize_sweep(benchmark):
    rows = []
    for block in BLOCK_SIZES:
        p = Parameters(block_size=block)
        g = p.vbtree_geometry()
        qr = p.result_rows(0.2)
        rows.append(
            (
                block,
                g.internal_fanout(),
                g.height_for(p.num_rows),
                envelope_digests(p, qr),
                vbtree_comm_cost(p, 0.2).total,
            )
        )
    emit(
        "Ablation A3: block size vs fan-out/height/D_S (sel 20%)",
        "ablation_blocksize",
        ["|B|", "fan-out", "height", "|D_S| max", "comm bytes (20%)"],
        rows,
    )
    fanouts = [r[1] for r in rows]
    heights = [r[2] for r in rows]
    assert fanouts == sorted(fanouts)                   # grows with |B|
    assert heights == sorted(heights, reverse=True)     # shrinks with |B|
    benchmark(lambda: [vbtree_comm_cost(Parameters(block_size=b), 0.2) for b in BLOCK_SIZES])
