"""Replication cost: clone-shipping (seed baseline) vs delta shipping.

The seed's ``CentralServer.propagate`` shipped a full VB-tree clone to
every edge per mutation — O(tree × edges) bytes per changed row.  The
delta protocol (DESIGN.md section 6) ships the root-to-leaf digest path
instead, which is O(path).  This bench measures both from the running
system at several table sizes and writes the series as JSON
(``benchmarks/results/replication_bytes.json``) in addition to the
usual CSV, per the acceptance criterion: a single-row insert into a
10k-row table must replicate in >= 10x fewer bytes than a full clone.
"""

import json
import os

import pytest

from repro.bench.series import emit, results_dir
from repro.edge.central import CentralServer, ReplicationMode
from repro.workloads.generator import TableSpec, generate_table

TABLE_SIZES = (1_000, 5_000, 10_000)


def _deployment(rows: int, replication=ReplicationMode.EAGER):
    central = CentralServer(
        db_name="replbench", rsa_bits=512, seed=404, replication=replication
    )
    spec = TableSpec(name="items", rows=rows, columns=5, seed=11)
    schema, data = generate_table(spec)
    central.create_table(schema, data)
    edge = central.spawn_edge_server("bench-edge")
    return central, edge


def _one_insert_costs(rows: int) -> dict:
    """Replication bytes + simulated latency for one single-row insert."""
    central, edge = _deployment(rows)
    # The seed's per-update behaviour, kept behind force_snapshot: a
    # full replica transfer through the same byte-accounted channel.
    central.propagate("items", force_snapshot=True)
    clone_transfer = edge.replication_channel.transfers[-1]
    assert clone_transfer.kind == "snapshot"
    clone_bytes = clone_transfer.nbytes
    before = len(edge.replication_channel.transfers)
    central.insert("items", (10_000_000, *["zz"] * 4))
    transfers = edge.replication_channel.transfers[before:]
    assert len(transfers) == 1 and transfers[0].kind == "delta"
    return {
        "rows": rows,
        "clone_bytes": clone_bytes,
        "delta_bytes": transfers[0].nbytes,
        "ratio": clone_bytes / transfers[0].nbytes,
        "delta_seconds": transfers[0].seconds,
        "tree_height": central.vbtrees["items"].height(),
    }


def test_single_insert_delta_vs_clone(benchmark):
    """The acceptance criterion: O(path), not O(tree)."""
    series = [_one_insert_costs(rows) for rows in TABLE_SIZES]
    emit(
        "Replication bytes per single-row insert: full clone vs signed delta",
        "replication_bytes",
        ["rows", "clone bytes", "delta bytes", "ratio", "height"],
        [
            (s["rows"], s["clone_bytes"], s["delta_bytes"],
             round(s["ratio"], 1), s["tree_height"])
            for s in series
        ],
    )
    path = os.path.join(results_dir(), "replication_bytes.json")
    with open(path, "w") as fh:
        json.dump({"series": series}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")

    at_10k = next(s for s in series if s["rows"] == 10_000)
    assert at_10k["ratio"] >= 10.0, (
        f"delta replication only {at_10k['ratio']:.1f}x smaller than clone"
    )
    # Delta size tracks tree height (O(path)), not table size: going
    # 1k -> 10k rows grows the clone ~10x but the delta barely moves.
    smallest, largest = series[0], series[-1]
    assert largest["clone_bytes"] > 5 * smallest["clone_bytes"]
    assert largest["delta_bytes"] < 2 * smallest["delta_bytes"]

    benchmark.pedantic(_one_insert_costs, args=(1_000,), rounds=1, iterations=1)


@pytest.mark.parametrize("n_updates", [1, 10, 50])
def test_lazy_batch_amortizes(benchmark, n_updates):
    """Lazy mode coalesces the pending log into one signed batch; bytes
    per update fall as the batch grows (superseded root/path digests
    are dropped)."""
    central, edge = _deployment(2_000, replication=ReplicationMode.LAZY)

    def run():
        for i in range(n_updates):
            central.insert(
                "items", (20_000_000 + i + n_updates * 1_000, *["b"] * 4)
            )
        before = edge.replication_channel.total_bytes
        central.propagate("items")
        return edge.replication_channel.total_bytes - before

    batch_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    per_update = batch_bytes / n_updates
    print(
        f"\n[lazy batch] {n_updates} updates -> {batch_bytes} B "
        f"({per_update:.0f} B/update)"
    )
    assert central.staleness(edge, "items") == 0
