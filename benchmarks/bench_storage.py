"""Section 4.1 — storage costs: base-table digest overhead and index
sizes at the paper's defaults."""

from repro.analysis.params import Parameters
from repro.analysis.storage import storage_costs
from repro.bench.series import emit


def test_storage_costs(benchmark):
    p = Parameters()
    s = storage_costs(p)
    emit(
        "Section 4.1: storage costs at paper defaults (N_r = 1M)",
        "storage_costs",
        ["quantity", "B-tree", "VB-tree"],
        [
            ("fan-out", s.btree_fanout, s.vbtree_fanout),
            ("height", s.btree_height, s.vbtree_height),
            ("nodes", s.btree_nodes, s.vbtree_nodes),
            ("index bytes", s.btree_index_bytes, s.vbtree_index_bytes),
            ("table bytes", s.table_bytes, s.table_bytes),
            ("table digest overhead", 0, s.table_digest_overhead),
            ("per-node overhead bytes", 0, s.node_overhead_bytes),
        ],
    )
    # Paper claims: table overhead = N_r x N_c x |D| = 160 MB here.
    assert s.table_digest_overhead == 160_000_000
    assert s.vbtree_index_bytes > s.btree_index_bytes
    benchmark(storage_costs, p)
