"""Ablation A2 — signature granularity.

Three points on the design axis the paper stakes out:

* **per-tuple** signatures (Naive): no tree, O(Q_r) decryptions;
* **per-node** signatures (VB-tree): O(envelope) decryptions, VO
  independent of N_r — the paper's position;
* **root-only** signature (Merkle / Devanbu et al. [5]): 1 decryption
  but VO grows with log N_r and projection happens at the client.

Measured on the same data: VO/proof bytes and client decryptions per
query across selectivities."""

import pytest

from repro.baselines.merkle import MerkleTree, MerkleVerifier
from repro.bench.series import emit
from repro.crypto.meter import CostMeter
from repro.workloads.queries import range_for_selectivity

SELECTIVITIES = (0.01, 0.1, 0.4, 0.8)


@pytest.fixture(scope="module")
def merkle(deployment):
    central, _edge, _client, _spec = deployment
    vbt = central.vbtrees["items"]
    return MerkleTree(
        vbt.schema, list(vbt.rows()), central._signer
    )


def test_granularity_bytes(benchmark, deployment, merkle):
    central, edge, _client, spec = deployment
    sig_len = central.public_key.signature_len

    series = []

    def sweep():
        series.clear()
        for sel in SELECTIVITIES:
            q = range_for_selectivity(spec, sel)
            resp = edge.range_query("items", q.low, q.high)
            _naive, naive_bytes = edge.naive_range_query("items", q.low, q.high)
            proof = merkle.prove_key_range(q.low, q.high)
            series.append(
                (
                    sel * 100,
                    naive_bytes,
                    resp.wire_bytes,
                    proof.wire_size(sig_len),
                )
            )
        return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation A2: response bytes by signature granularity",
        "ablation_granularity_bytes",
        ["sel %", "per-tuple (Naive)", "per-node (VB)", "root-only (Merkle)"],
        series,
    )


def test_granularity_decryptions(benchmark, deployment, merkle):
    central, edge, _client, spec = deployment

    series = []

    def sweep():
      series.clear()
      for sel in SELECTIVITIES:
        q = range_for_selectivity(spec, sel)

        resp = edge.range_query("items", q.low, q.high)
        vb_meter = CostMeter()
        assert central.make_client(meter=vb_meter).verify(resp).ok

        naive_result, _b = edge.naive_range_query("items", q.low, q.high)
        naive_meter = CostMeter()
        assert central.make_client(meter=naive_meter).verify_naive(naive_result)

        proof = merkle.prove_key_range(q.low, q.high)
        merkle_meter = CostMeter()
        assert MerkleVerifier(central.public_key, meter=merkle_meter).verify(proof)

        series.append(
            (
                sel * 100,
                naive_meter.verifies,
                vb_meter.verifies,
                merkle_meter.verifies,
            )
        )
      return series

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation A2: client signature decryptions by granularity",
        "ablation_granularity_decryptions",
        ["sel %", "per-tuple (Naive)", "per-node (VB)", "root-only (Merkle)"],
        series,
    )
    for _sel, naive_v, vb_v, merkle_v in series:
        assert merkle_v == 1            # root only
        assert vb_v < naive_v           # the paper's Figure 12 ordering


def test_merkle_proof_grows_with_table(benchmark, deployment, merkle):
    """The paper's core criticism of [5]: VO depends on table size."""
    central, _edge, _client, _spec = deployment
    vbt = central.vbtrees["items"]
    rows = list(vbt.rows())
    small = MerkleTree(vbt.schema, rows[:512], central._signer)
    p_small = small.prove_range(10, 5)
    p_large = benchmark.pedantic(merkle.prove_range, args=(10, 5), rounds=1, iterations=1)
    print(
        f"\nsame 5-row result: siblings small-table={len(p_small.siblings)} "
        f"large-table={len(p_large.siblings)}"
    )
    assert len(p_large.siblings) > len(p_small.siblings)
