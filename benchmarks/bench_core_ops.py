"""Wall-clock micro-benchmarks of the core operations: VB-tree build,
VO construction, client verification, and the serialized round-trip.

These are the numbers a deployment engineer would ask for; the paper's
evaluation is analytical, so these have no paper counterpart — they
characterize this implementation."""

import pytest

from repro.core.query_auth import QueryAuthenticator
from repro.core.digests import DigestEngine, DigestPolicy, SigningDigestEngine
from repro.core.vbtree import VBTree
from repro.core.wire import result_from_bytes, result_to_bytes
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import DigestSigner
from repro.db.rows import Row
from repro.db.schema import Column, TableSchema
from repro.db.types import IntType, VarcharType
from repro.workloads.queries import range_for_selectivity


def test_vbtree_build_1k(benchmark):
    schema = TableSchema(
        "b",
        (Column("id", IntType()), Column("v", VarcharType(capacity=20))),
        key="id",
    )
    keypair = generate_keypair(bits=512, seed=3)
    rows = [Row(schema, (i, f"value-{i:05d}")) for i in range(1_000)]

    def build():
        signing = SigningDigestEngine(
            DigestEngine("benchdb"), DigestSigner.from_keypair(keypair)
        )
        return VBTree.build(schema, rows, signing)

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(tree) == 1_000


@pytest.mark.parametrize("sel", [0.05, 0.4])
def test_vo_construction(benchmark, deployment, sel):
    central, _edge, _client, spec = deployment
    vbt = central.vbtrees["items"]
    auth = QueryAuthenticator(vbt)
    q = range_for_selectivity(spec, sel)
    result = benchmark(auth.range_query, q.low, q.high)
    assert result.num_rows == q.expected_rows


@pytest.mark.parametrize("sel", [0.05, 0.4])
def test_client_verification(benchmark, deployment, sel):
    central, edge, client, spec = deployment
    q = range_for_selectivity(spec, sel)
    resp = edge.range_query("items", q.low, q.high)
    verdict = benchmark(client.verify, resp)
    assert verdict.ok


def test_wire_roundtrip(benchmark, deployment):
    central, edge, _client, spec = deployment
    sig_len = central.public_key.signature_len
    q = range_for_selectivity(spec, 0.2)
    resp = edge.range_query("items", q.low, q.high)

    def roundtrip():
        return result_from_bytes(result_to_bytes(resp.result, sig_len))

    parsed = benchmark(roundtrip)
    assert parsed.rows == resp.result.rows


def test_projection_vo_construction(benchmark, deployment):
    central, _edge, _client, spec = deployment
    vbt = central.vbtrees["items"]
    auth = QueryAuthenticator(vbt)
    q = range_for_selectivity(spec, 0.2)
    result = benchmark(auth.range_query, q.low, q.high, ("id", "a1"))
    assert result.columns == ("id", "a1")
