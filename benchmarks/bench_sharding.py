"""Sharded central plane: signed-insert throughput vs. shard count.

The sharded plane (DESIGN.md section 12) splits the central signer into
N share-nothing shards — each with its own key, logs, and fan-out
engine — so signed-insert throughput scales ~linearly with shard count.
This bench proves it with the *critical-path* model: the workload's
inserts are grouped by owning shard and each shard's group is timed
separately; throughput is ``total_inserts / max(per-shard elapsed)``.
Because shards share nothing (no lock, log, signature, or fan-out state
crosses a shard boundary), a multi-core deployment's wall clock is
bounded by exactly its slowest shard — the critical path is the honest
machine-independent measure, and it is what makes the ≥3× assertion
reproducible on a single-core CI runner.

Two workloads per shard count:

* ``uniform`` — insert keys spread evenly over the key domain, so every
  shard gets ~equal signing load: 4 shards ≈ 4× one shard (the bench
  asserts ≥3×).
* ``zipf`` — :func:`repro.workloads.generator.skewed_insert_keys`
  clusters inserts on hot buckets; the shard owning the hot ranges
  becomes the critical path, and the summary reports per-shard p50/p99
  insert latency so the imbalance is visible, not just the slowdown.

The bench also checks the two structural claims: *total* replication
bytes stay flat as the shard count grows (each insert's delta goes only
to its owning shard's edges, so sharding buys signing throughput
without multiplying fan-out traffic), and a scattered range query
merges into a verified answer byte-identical to the unsharded one.

Gated by ``benchmarks/results/baselines/sharding.json`` —
``replication_bytes``/``inserts`` at the default ±10%, the
``speedup_vs_1shard`` ratio under a baseline ``"tolerances"`` override
(ratios of same-run measurements are stable, but not byte-exact).
"""

import json
import os
import time

from repro.bench.series import emit, results_dir
from repro.crypto.encoding import encode_values
from repro.edge.central import CentralServer
from repro.edge.sharding import ShardedCentral
from repro.workloads.generator import (
    TableSpec,
    generate_table,
    skewed_insert_keys,
)

SHARD_COUNTS = (1, 2, 4)
SEED_ROWS = 240
INSERTS = 120
EDGES_PER_SHARD = 2
COLUMNS = 5
RSA_BITS = 512
ZIPF_THETA = 0.99
#: Fixed VB-tree node fanout for every shard count.  The default
#: size-derived geometry hands a small partition a single wide root
#: whose per-insert rehash is O(rows) — a 60-row table inserts *slower*
#: than a 240-row one — which would let tree-geometry noise pollute the
#: sharding speedup.  A fixed fanout keeps node width constant at every
#: size (depth absorbs the difference), so the speedup measures signer
#: sharding and nothing else.
TREE_FANOUT = 16

#: Seed keys are even (key_step=2); insert keys take odd slots of the
#: same domain so both workloads stay collision-free by construction.
DOMAIN = SEED_ROWS


def _spec() -> TableSpec:
    return TableSpec(
        name="items", rows=SEED_ROWS, columns=COLUMNS, seed=17, key_step=2
    )


def _insert_keys(workload: str) -> list[int]:
    if workload == "uniform":
        stride = DOMAIN / INSERTS
        slots = [int(i * stride) for i in range(INSERTS)]
    else:
        slots = skewed_insert_keys(
            INSERTS, DOMAIN, theta=ZIPF_THETA, seed=23, buckets=64
        )
    return [2 * slot + 1 for slot in slots]


def _payload(key: int) -> tuple:
    return (key, *[f"v{key % 97:>018}"] * (COLUMNS - 1))


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _run_workload(shards: int, workload: str) -> dict:
    schema, rows = generate_table(_spec())
    sharded = ShardedCentral(
        "shardbench", shards=shards, seed=71, rsa_bits=RSA_BITS
    )
    sharded.create_table(
        schema,
        rows,
        partition="range" if shards > 1 else "hash",
        fanout_override=TREE_FANOUT,
    )
    fleets = sharded.spawn_edge_fleet(per_shard=EDGES_PER_SHARD)
    for fleet in fleets.values():
        for edge in fleet:
            edge.replication_channel.reset()

    keys = _insert_keys(workload)
    groups: dict[int, list[int]] = {s: [] for s in range(shards)}
    for key in keys:
        groups[sharded.shard_for("items", key)].append(key)

    # Critical-path timing: each share-nothing shard's group runs (and
    # is timed) in isolation; the slowest shard is the wall clock an
    # N-core deployment would observe.
    per_shard = []
    for shard_id in range(shards):
        latencies: list[float] = []
        start = time.perf_counter()
        for key in groups[shard_id]:
            t0 = time.perf_counter()
            sharded.shards[shard_id].insert("items", _payload(key))
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        per_shard.append(
            {
                "shard": shard_id,
                "inserts": len(groups[shard_id]),
                "seconds": elapsed,
                "p50_ms": 1e3 * _quantile(latencies, 0.50) if latencies else 0.0,
                "p99_ms": 1e3 * _quantile(latencies, 0.99) if latencies else 0.0,
            }
        )

    critical_path = max(s["seconds"] for s in per_shard)
    edges = [edge for fleet in fleets.values() for edge in fleet]
    total_bytes = sum(e.replication_channel.total_bytes for e in edges)
    busiest = max(s["inserts"] for s in per_shard)
    return {
        "shards": shards,
        "workload": workload,
        "inserts": INSERTS,
        "critical_path_seconds": critical_path,
        "inserts_per_sec": INSERTS / critical_path,
        "replication_bytes": total_bytes,
        "bytes_per_edge": total_bytes // len(edges),
        "imbalance": busiest * shards / INSERTS,
        "per_shard": per_shard,
    }


def _merge_series(path: str, rows: list[dict]) -> list[dict]:
    """Merge rows into the results file keyed by ``(shards, workload)``."""
    existing: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh).get("series", [])
        except (OSError, ValueError):
            existing = []
    fresh = {(r["shards"], r["workload"]) for r in rows}
    merged = [
        r
        for r in existing
        if (r.get("shards"), r.get("workload")) not in fresh
    ]
    merged.extend(rows)
    with open(path, "w") as fh:
        json.dump({"series": merged}, fh, indent=2)
    print(f"[json series written to {os.path.relpath(path)}]")
    return merged


def test_sharded_insert_throughput(benchmark):
    """≥3× signed-insert throughput at 4 shards, flat per-edge bytes,
    hot-shard imbalance under Zipf skew."""
    series = [
        _run_workload(shards, workload)
        for workload in ("uniform", "zipf")
        for shards in SHARD_COUNTS
    ]
    base = {
        row["workload"]: row for row in series if row["shards"] == 1
    }
    for row in series:
        row["speedup_vs_1shard"] = round(
            base[row["workload"]]["critical_path_seconds"]
            / row["critical_path_seconds"],
            3,
        )

    emit(
        "Sharded central plane: signed-insert critical path vs shard count",
        "sharding",
        ["workload", "shards", "ins/s", "speedup", "imbalance",
         "bytes/edge", "hot p50 ms", "hot p99 ms"],
        [
            (
                s["workload"], s["shards"], round(s["inserts_per_sec"], 1),
                s["speedup_vs_1shard"], round(s["imbalance"], 2),
                s["bytes_per_edge"],
                round(max(p["p50_ms"] for p in s["per_shard"]), 2),
                round(max(p["p99_ms"] for p in s["per_shard"]), 2),
            )
            for s in series
        ],
    )
    _merge_series(os.path.join(results_dir(), "sharding.json"), series)

    by_row = {(s["workload"], s["shards"]): s for s in series}

    # The tentpole claim: 4 share-nothing signer shards give at least
    # 3× the signed-insert throughput of one, same workload.
    speedup_4 = by_row[("uniform", 4)]["speedup_vs_1shard"]
    assert speedup_4 >= 3.0, (
        f"4-shard uniform speedup {speedup_4:.2f}x < 3x"
    )

    # Per-shard fan-out cost is flat in the shard count: each insert's
    # delta goes only to its owning shard's edges, so *total*
    # replication bytes for the same workload do not grow with N —
    # sharding buys signing throughput without multiplying fan-out
    # traffic.
    for workload in ("uniform", "zipf"):
        totals = [
            by_row[(workload, n)]["replication_bytes"] for n in SHARD_COUNTS
        ]
        ratio = max(totals) / min(totals)
        assert ratio < 2.0, (
            f"{workload}: replication bytes not flat across shard counts "
            f"({ratio:.2f}x)"
        )

    # Zipf skew makes the hot shard the critical path: the skewed
    # workload must scale strictly worse than the uniform one.
    zipf_4 = by_row[("zipf", 4)]["speedup_vs_1shard"]
    assert zipf_4 < speedup_4, (
        f"zipf speedup {zipf_4:.2f}x not below uniform {speedup_4:.2f}x"
    )
    assert by_row[("zipf", 4)]["imbalance"] > 1.5, "zipf workload not skewed"

    benchmark.pedantic(
        _run_workload, args=(2, "uniform"), rounds=1, iterations=1
    )


def test_scatter_gather_matches_unsharded():
    """A scattered range query merges into a verified answer
    byte-identical to the unsharded central's."""
    schema, rows = generate_table(_spec())
    keys = _insert_keys("uniform")

    sharded = ShardedCentral("shardbench", shards=4, seed=71, rsa_bits=RSA_BITS)
    sharded.create_table(
        schema, rows, partition="range", fanout_override=TREE_FANOUT
    )
    sharded.spawn_edge_fleet(per_shard=EDGES_PER_SHARD)
    for key in keys:
        sharded.insert("items", _payload(key))

    single = CentralServer("shardbench", seed=71, rsa_bits=RSA_BITS)
    single.create_table(schema, rows, fanout_override=TREE_FANOUT)
    edge = single.spawn_edge_server("edge-0")
    for key in keys:
        single.insert("items", _payload(key))

    low, high = 3, 2 * DOMAIN - 5
    merged = sharded.make_router().range_query("items", low=low, high=high)
    reference = edge.range_query("items", low=low, high=high)
    assert merged.verified and len(merged.parts) == 4
    assert single.make_client().verify(reference.result).ok
    assert merged.keys == reference.result.keys
    assert merged.rows == reference.result.rows
    # Byte-identical, not merely equal: the canonical wire encoding of
    # the merged rows matches the unsharded answer's exactly.
    flat = [v for row in merged.rows for v in row]
    ref_flat = [v for row in reference.result.rows for v in row]
    assert encode_values(flat) == encode_values(ref_flat)
