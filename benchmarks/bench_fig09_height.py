"""Figure 9 — index tree height vs key length (B-tree vs VB-tree).

Analytic series from formula (7) at N_r = 1M, plus a measured
cross-check: trees *built* at reduced scale land within one level of
the fully-packed analytic height."""

from repro.analysis.params import Parameters
from repro.analysis.storage import fig9_series
from repro.bench.series import emit
from repro.db.btree import BPlusTree
from repro.db.page import PageGeometry


def test_fig09_height(benchmark):
    rows = fig9_series()
    emit(
        "Figure 9: tree height vs key length (N_r = 1,000,000)",
        "fig09_height",
        ["log2|K|", "B-tree height", "VB-tree height"],
        rows,
    )
    for _logk, h_b, h_vb in rows:
        assert h_vb - h_b <= 1  # the paper's 'no material difference'
    benchmark(fig9_series)


def test_fig09_measured_height(benchmark):
    """Build real trees (small blocks => same heights at 20k rows) and
    compare against the analytic formula."""
    geometry = PageGeometry(block_size=512, key_len=16, pointer_len=4, digest_len=16)
    n = 20_000

    def build():
        tree = BPlusTree(geometry=geometry)
        for k in range(n):
            tree.insert(k, None)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    analytic = geometry.height_for(n)
    print(
        f"\nmeasured height at {n} rows (512B blocks): built={tree.height()}, "
        f"analytic fully-packed={analytic}"
    )
    assert analytic <= tree.height() <= analytic + 1
